"""Differential harness: ``evaluate_batch`` vs per-row scalar ``evaluate``.

Property-based generation of random scenarios and batches of *partial*
assignments (unassigned users and empty extenders included); every field
of the batched report must match the scalar engine to 1e-9 across all
three PLC sharing laws.  This suite is the contract that lets every
search algorithm trust the batched hot path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import UNASSIGNED, Scenario
from repro.net.engine import (BatchThroughputReport, evaluate,
                              evaluate_batch)
from repro.plc.sharing import (PLC_MODES, allocate_backhaul,
                               allocate_backhaul_batch,
                               max_min_time_shares,
                               max_min_time_shares_batch)
from repro.wifi.sharing import cell_throughputs, cell_throughputs_batch

ATOL = 1e-9

_FIELDS = ("wifi_throughputs", "plc_throughputs", "plc_time_shares",
           "extender_throughputs", "user_throughputs")


def _random_scenario(rng: np.random.Generator, n_users: int,
                     n_extenders: int) -> Scenario:
    """A scenario with dead links, dead backhauls, and optional caps."""
    wifi = rng.uniform(1.0, 150.0, size=(n_users, n_extenders))
    wifi = np.where(rng.random((n_users, n_extenders)) < 0.3, 0.0, wifi)
    plc = rng.uniform(0.0, 200.0, size=n_extenders)
    plc = np.where(rng.random(n_extenders) < 0.15, 0.0, plc)
    return Scenario(wifi_rates=wifi, plc_rates=plc)


def _random_batch(rng: np.random.Generator, scenario: Scenario,
                  n_batch: int) -> np.ndarray:
    """Partial assignments: unassigned users and empty extenders happen."""
    batch = np.full((n_batch, scenario.n_users), UNASSIGNED, dtype=int)
    for b in range(n_batch):
        for i in range(scenario.n_users):
            options = scenario.reachable(i)
            if options.size and rng.random() < 0.8:
                batch[b, i] = rng.choice(options)
    return batch


class TestEvaluateBatchDifferential:
    @given(st.integers(0, 8), st.integers(1, 5), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_rows(self, n_users, n_ext, n_batch, seed):
        rng = np.random.default_rng(seed)
        scenario = _random_scenario(rng, n_users, n_ext)
        batch = _random_batch(rng, scenario, n_batch)
        for mode in PLC_MODES:
            report = evaluate_batch(scenario, batch, plc_mode=mode)
            assert isinstance(report, BatchThroughputReport)
            assert len(report) == n_batch
            for b in range(n_batch):
                ref = evaluate(scenario, batch[b], plc_mode=mode)
                expanded = report.expand(b)
                assert np.array_equal(expanded.assignment, ref.assignment)
                for name in _FIELDS:
                    got = getattr(expanded, name)
                    want = getattr(ref, name)
                    assert np.allclose(got, want, atol=ATOL, rtol=0.0), (
                        f"{name} mismatch in row {b} under {mode}: "
                        f"{got} != {want}")
                assert np.array_equal(expanded.bottleneck_is_plc,
                                      ref.bottleneck_is_plc)
                assert report.aggregates[b] == pytest.approx(
                    ref.aggregate, abs=ATOL)
                assert (expanded.n_active_extenders
                        == ref.n_active_extenders)

    @given(st.integers(1, 6), st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_all_unassigned_rows_score_zero(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        scenario = _random_scenario(rng, n_users, n_ext)
        batch = np.full((3, n_users), UNASSIGNED, dtype=int)
        for mode in PLC_MODES:
            report = evaluate_batch(scenario, batch, plc_mode=mode)
            assert np.all(report.aggregates == 0.0)
            assert np.all(report.user_throughputs == 0.0)
            assert report.expand(0).n_active_extenders == 0

    def test_best_breaks_ties_to_first(self):
        scenario = Scenario(wifi_rates=np.array([[40.0, 40.0]]),
                            plc_rates=np.array([100.0, 100.0]))
        report = evaluate_batch(scenario, [[0], [1]])
        assert report.best() == 0

    def test_empty_batch_best_raises(self):
        scenario = Scenario(wifi_rates=np.array([[40.0]]),
                            plc_rates=np.array([100.0]))
        report = evaluate_batch(scenario, np.empty((0, 1), dtype=int))
        assert len(report) == 0
        with pytest.raises(ValueError, match="empty batch"):
            report.best()

    def test_capacity_violations_rejected(self):
        scenario = Scenario(wifi_rates=np.full((2, 1), 40.0),
                            plc_rates=np.array([100.0]),
                            capacities=[1])
        with pytest.raises(ValueError, match="constraint \\(8\\)"):
            evaluate_batch(scenario, [[0, 0]])

    def test_incomplete_rows_rejected_when_required(self):
        scenario = Scenario(wifi_rates=np.full((2, 1), 40.0),
                            plc_rates=np.array([100.0]))
        with pytest.raises(ValueError, match="constraint \\(7\\)"):
            evaluate_batch(scenario, [[0, UNASSIGNED]],
                           require_complete=True)

    def test_unreachable_assignment_rejected(self):
        scenario = Scenario(wifi_rates=np.array([[0.0, 40.0]]),
                            plc_rates=np.array([100.0, 100.0]))
        with pytest.raises(ValueError, match="unreachable"):
            evaluate_batch(scenario, [[0]])


class TestWifiBatchDifferential:
    @given(st.integers(0, 8), st.integers(1, 5), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar(self, n_users, n_ext, n_batch, seed):
        rng = np.random.default_rng(seed)
        scenario = _random_scenario(rng, n_users, n_ext)
        batch = _random_batch(rng, scenario, n_batch)
        got = cell_throughputs_batch(scenario.wifi_rates, batch, n_ext)
        for b in range(n_batch):
            want = cell_throughputs(scenario.wifi_rates, batch[b], n_ext)
            assert np.allclose(got[b], want, atol=ATOL, rtol=0.0)

    def test_dead_link_rejected(self):
        rates = np.array([[0.0, 40.0]])
        with pytest.raises(ValueError, match="non-positive"):
            cell_throughputs_batch(rates, np.array([[0]]), 2)


class TestPlcBatchDifferential:
    @given(st.integers(1, 6), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_allocation_matches_scalar(self, n_ext, n_batch, seed):
        rng = np.random.default_rng(seed)
        rates = np.where(rng.random(n_ext) < 0.15, 0.0,
                         rng.uniform(0.0, 200.0, n_ext))
        demands = np.where(rng.random((n_batch, n_ext)) < 0.3, 0.0,
                           rng.uniform(0.0, 250.0, (n_batch, n_ext)))
        for mode in PLC_MODES:
            got = allocate_backhaul_batch(rates, demands, mode=mode)
            for b in range(n_batch):
                want = allocate_backhaul(rates, demands[b], mode=mode)
                assert np.allclose(got.time_shares[b], want.time_shares,
                                   atol=ATOL, rtol=0.0)
                assert np.allclose(got.throughputs[b], want.throughputs,
                                   atol=ATOL, rtol=0.0)
                assert np.array_equal(got.saturated[b], want.saturated)

    @given(st.integers(1, 7), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_max_min_matches_scalar(self, n_ext, n_batch, seed):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.0, 0.8, (n_batch, n_ext))
        demands = np.where(rng.random((n_batch, n_ext)) < 0.2, 0.0, demands)
        demands = np.where(rng.random((n_batch, n_ext)) < 0.1, np.inf,
                           demands)
        got = max_min_time_shares_batch(demands)
        for b in range(n_batch):
            want = max_min_time_shares(demands[b])
            assert np.allclose(got[b], want, atol=ATOL, rtol=0.0)
