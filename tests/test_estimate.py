"""Tests for channel-quality estimation and noise models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.estimate import (EwmaEstimator,
                                estimate_rate_from_rssi_samples,
                                noisy_scenario)
from repro.wifi.phy import WifiPhy

from .conftest import random_scenario


class TestEwma:
    def test_first_sample_is_estimate(self):
        est = EwmaEstimator(alpha=0.3)
        assert est.update(10.0) == 10.0
        assert est.value == 10.0

    def test_smoothing(self):
        est = EwmaEstimator(alpha=0.5)
        est.update(0.0)
        assert est.update(10.0) == pytest.approx(5.0)
        assert est.update(10.0) == pytest.approx(7.5)

    def test_alpha_one_tracks_last_sample(self):
        est = EwmaEstimator(alpha=1.0)
        est.update(1.0)
        assert est.update(9.0) == 9.0

    def test_value_before_update_rejected(self):
        with pytest.raises(ValueError):
            EwmaEstimator().value

    def test_reset(self):
        est = EwmaEstimator()
        est.update(5.0)
        est.reset()
        with pytest.raises(ValueError):
            est.value

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)

    @given(st.lists(st.floats(min_value=-90, max_value=-20), min_size=1,
                    max_size=50))
    @settings(max_examples=100)
    def test_estimate_within_sample_range(self, samples):
        est = EwmaEstimator(alpha=0.2)
        for s in samples:
            est.update(s)
        assert min(samples) - 1e-9 <= est.value <= max(samples) + 1e-9

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_sample_rejected(self, bad):
        est = EwmaEstimator()
        est.update(10.0)
        with pytest.raises(ValueError, match="non-finite"):
            est.update(bad)
        # The estimate was not poisoned by the rejected sample.
        assert est.value == 10.0

    def test_drop_nonfinite_skips_and_counts(self):
        est = EwmaEstimator(alpha=0.5, drop_nonfinite=True)
        est.update(10.0)
        assert est.update(float("nan")) == 10.0  # unchanged
        assert est.update(20.0) == pytest.approx(15.0)
        assert est.dropped == 1

    def test_drop_nonfinite_before_first_sample_returns_nan(self):
        est = EwmaEstimator(drop_nonfinite=True)
        assert np.isnan(est.update(float("inf")))
        assert est.dropped == 1
        with pytest.raises(ValueError):
            est.value  # still no estimate

    def test_reset_clears_drop_counter(self):
        est = EwmaEstimator(drop_nonfinite=True)
        est.update(float("nan"))
        est.reset()
        assert est.dropped == 0


class TestRateFromRssi:
    def test_strong_signal_gives_top_rate(self):
        phy = WifiPhy()
        rate = estimate_rate_from_rssi_samples([-30.0] * 5, phy=phy)
        assert rate == pytest.approx(
            phy.mcs_table[-1][1] * phy.spatial_streams)

    def test_weak_signal_gives_zero(self):
        assert estimate_rate_from_rssi_samples([-95.0] * 5) == 0.0

    def test_outlier_suppressed_by_smoothing(self):
        phy = WifiPhy()
        steady = estimate_rate_from_rssi_samples([-50.0] * 20, phy=phy)
        with_outlier = estimate_rate_from_rssi_samples(
            [-50.0] * 19 + [-90.0], phy=phy, alpha=0.1)
        # One bad reading barely moves a smoothed estimate.
        assert with_outlier >= steady * 0.7

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            estimate_rate_from_rssi_samples([])

    def test_nonfinite_sample_rejected_with_index(self):
        with pytest.raises(ValueError, match="sample 1"):
            estimate_rate_from_rssi_samples([-50.0, float("nan"),
                                             -50.0])

    def test_drop_nonfinite_skips_driver_garbage(self):
        phy = WifiPhy()
        clean = estimate_rate_from_rssi_samples([-50.0] * 3, phy=phy)
        dirty = estimate_rate_from_rssi_samples(
            [-50.0, float("nan"), -50.0, float("inf"), -50.0],
            phy=phy, drop_nonfinite=True)
        assert dirty == clean

    def test_all_samples_dropped_rejected(self):
        with pytest.raises(ValueError, match="all 3"):
            estimate_rate_from_rssi_samples(
                [float("nan")] * 3, drop_nonfinite=True)

    def test_matches_phy_ladder(self):
        """A constant RSSI stream maps exactly through the MCS ladder."""
        phy = WifiPhy()
        rssi = -60.0
        expected = phy.rate_for_snr(rssi - phy.noise_floor_dbm)
        assert estimate_rate_from_rssi_samples([rssi] * 3,
                                               phy=phy) == expected


class TestNoisyScenario:
    def test_zero_noise_is_identity(self, rng):
        sc = random_scenario(rng, 5, 3)
        noisy = noisy_scenario(sc, rng)
        assert np.allclose(noisy.wifi_rates, sc.wifi_rates)
        assert np.allclose(noisy.plc_rates, sc.plc_rates)

    def test_noise_perturbs_rates(self, rng):
        sc = random_scenario(rng, 5, 3)
        noisy = noisy_scenario(sc, rng, wifi_noise_fraction=0.2,
                               plc_noise_fraction=0.2)
        assert not np.allclose(noisy.wifi_rates, sc.wifi_rates)
        assert not np.allclose(noisy.plc_rates, sc.plc_rates)

    def test_reachability_preserved(self, rng):
        sc = random_scenario(rng, 8, 4, reachable_prob=0.5)
        noisy = noisy_scenario(sc, rng, wifi_noise_fraction=0.5)
        assert np.array_equal(noisy.wifi_rates > 0, sc.wifi_rates > 0)

    def test_negative_noise_rejected(self, rng):
        sc = random_scenario(rng, 2, 2)
        with pytest.raises(ValueError):
            noisy_scenario(sc, rng, wifi_noise_fraction=-0.1)

    @given(st.floats(min_value=0.01, max_value=0.5),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_noise_is_roughly_unbiased(self, level, seed):
        """The log-normal perturbation has unit mean (many-link average
        stays near truth)."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, 40, 10)
        noisy = noisy_scenario(sc, rng, wifi_noise_fraction=level)
        ratio = noisy.wifi_rates.mean() / sc.wifi_rates.mean()
        assert 0.8 <= ratio <= 1.2
