"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(3.0, lambda: log.append("c"))
        queue.schedule_at(1.0, lambda: log.append("a"))
        queue.schedule_at(2.0, lambda: log.append("b"))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        log = []
        for name in "abc":
            queue.schedule_at(5.0, lambda n=name: log.append(n))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(7.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [7.5]
        assert queue.now == 7.5

    def test_schedule_in_relative(self):
        queue = EventQueue(start_time=10.0)
        handle = queue.schedule_in(2.5, lambda: None)
        assert handle.time == 12.5

    def test_past_scheduling_rejected(self):
        queue = EventQueue(start_time=5.0)
        with pytest.raises(ValueError):
            queue.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        log = []

        def chain(n):
            log.append(queue.now)
            if n > 0:
                queue.schedule_in(1.0, lambda: chain(n - 1))

        queue.schedule_at(0.0, lambda: chain(3))
        queue.run()
        assert log == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        log = []
        handle = queue.schedule_at(1.0, lambda: log.append("x"))
        handle.cancel()
        queue.run()
        assert log == []

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        handle = queue.schedule_at(1.0, lambda: None)
        queue.run()
        handle.cancel()  # must not raise

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule_at(1.0, lambda: None)
        drop = queue.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1


class TestRunUntil:
    def test_stops_at_boundary(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(1.0, lambda: log.append(1))
        queue.schedule_at(5.0, lambda: log.append(5))
        queue.run_until(3.0)
        assert log == [1]
        assert queue.now == 3.0
        queue.run_until(6.0)
        assert log == [1, 5]

    def test_boundary_inclusive(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(3.0, lambda: log.append(3))
        queue.run_until(3.0)
        assert log == [3]

    def test_backwards_rejected(self):
        queue = EventQueue(start_time=5.0)
        with pytest.raises(ValueError):
            queue.run_until(4.0)

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False
