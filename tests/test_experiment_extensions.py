"""Tests for the extension experiment modules (robustness, sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments.faults import run_fault_sweep
from repro.experiments.robustness import run_robustness
from repro.experiments.sweeps import (load_sweep_result,
                                      save_sweep_result,
                                      sweep_extenders, sweep_plc_quality,
                                      sweep_users)
from repro.experiments import robustness, sweeps
from repro.sim.checkpoint import FingerprintMismatch


class TestRobustness:
    def test_structure(self):
        result = run_robustness(noise_levels=(0.0, 0.2), n_trials=3,
                                n_extenders=5, n_users=12, seed=0)
        assert result.noise_levels == (0.0, 0.2)
        assert set(result.mean_mbps) == {"wolt", "greedy", "rssi"}
        assert len(result.wolt_retention) == 2
        assert result.wolt_retention[0] == pytest.approx(1.0)

    def test_wolt_reasonably_robust(self):
        result = run_robustness(noise_levels=(0.0, 0.3), n_trials=4,
                                n_extenders=8, n_users=20, seed=1)
        assert result.wolt_retention[1] >= 0.7

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            run_robustness(noise_levels=(-0.1,), n_trials=1)

    def test_main_formats(self):
        # Patch a tiny run through the module-level main for coverage.
        text = robustness.main(seed=0, n_trials=2)
        assert "robustness" in text.lower()


class TestSweeps:
    def test_extender_sweep_structure(self):
        result = sweep_extenders(extender_counts=(3, 8), n_users=12,
                                 n_trials=2, seed=0)
        assert result.values == (3.0, 8.0)
        assert len(result.ratio_wolt_greedy) == 2
        assert all(r > 0 for r in result.ratio_wolt_rssi)

    def test_user_sweep_structure(self):
        result = sweep_users(user_counts=(10, 20), n_extenders=5,
                             n_trials=2, seed=0)
        assert result.parameter == "n_users"
        assert len(result.ratio_wolt_greedy) == 2

    def test_plc_quality_crossover_direction(self):
        """Scaling capacities up weakly shrinks the WOLT/Greedy gap."""
        result = sweep_plc_quality(capacity_scales=(0.5, 8.0),
                                   n_extenders=6, n_users=18,
                                   n_trials=3, seed=0)
        assert result.ratio_wolt_greedy[0] >= \
            result.ratio_wolt_greedy[1] - 0.2

    def test_main_formats(self):
        text = sweeps.main(seed=0, n_trials=1)
        assert "Sweep over extender count" in text
        assert "WOLT/Greedy" in text


class TestSweepCheckpointing:
    def test_save_load_round_trip(self, tmp_path):
        result = sweep_extenders(extender_counts=(3, 5), n_users=10,
                                 n_trials=1, seed=4)
        path = tmp_path / "sweep.json"
        save_sweep_result(path, result, seed=4, n_trials=1)
        loaded = load_sweep_result(path, "n_extenders", seed=4,
                                   n_trials=1)
        assert loaded == result

    def test_mismatched_parameters_rejected(self, tmp_path):
        result = sweep_extenders(extender_counts=(3,), n_users=10,
                                 n_trials=1, seed=4)
        path = tmp_path / "sweep.json"
        save_sweep_result(path, result, seed=4, n_trials=1)
        with pytest.raises(FingerprintMismatch):
            load_sweep_result(path, "n_extenders", seed=5, n_trials=1)

    def test_main_resume_reuses_persisted_sweeps(self, tmp_path):
        cold = sweeps.main(seed=0, n_trials=1)
        first = sweeps.main(seed=0, n_trials=1,
                            checkpoint_dir=tmp_path)
        assert first == cold
        persisted = sorted(p.name for p in tmp_path.iterdir())
        assert persisted == ["sweep_n_extenders.json",
                             "sweep_n_users.json",
                             "sweep_plc_capacity_scale.json"]
        resumed = sweeps.main(seed=0, n_trials=1,
                              checkpoint_dir=tmp_path, resume=True)
        assert resumed == cold


class TestFaultSweepCheckpointing:
    PARAMS = dict(fault_levels=(0.0, 0.3), n_trials=3, n_extenders=3,
                  n_users=6, seed=9)

    def test_resumed_sweep_bit_identical_to_cold(self, tmp_path):
        checkpoint = tmp_path / "faults.jsonl"
        cold = run_fault_sweep(**self.PARAMS)
        checkpointed = run_fault_sweep(checkpoint=checkpoint,
                                       **self.PARAMS)
        assert checkpointed == cold
        # Drop the last journaled trial, simulating a crash after two
        # of three trials, then resume: bit-identical again.
        lines = checkpoint.read_text().splitlines()
        # woltlint: disable=W008 — deliberately tearing the journal
        checkpoint.write_text("\n".join(lines[:-1]) + "\n")
        resumed = run_fault_sweep(checkpoint=checkpoint, resume=True,
                                  **self.PARAMS)
        assert resumed == cold

    def test_mismatched_parameters_rejected(self, tmp_path):
        checkpoint = tmp_path / "faults.jsonl"
        run_fault_sweep(checkpoint=checkpoint, **self.PARAMS)
        other = dict(self.PARAMS, seed=10)
        with pytest.raises(FingerprintMismatch):
            run_fault_sweep(checkpoint=checkpoint, resume=True, **other)
