"""Tests for the extension experiment modules (robustness, sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments.robustness import run_robustness
from repro.experiments.sweeps import (sweep_extenders, sweep_plc_quality,
                                      sweep_users)
from repro.experiments import robustness, sweeps


class TestRobustness:
    def test_structure(self):
        result = run_robustness(noise_levels=(0.0, 0.2), n_trials=3,
                                n_extenders=5, n_users=12, seed=0)
        assert result.noise_levels == (0.0, 0.2)
        assert set(result.mean_mbps) == {"wolt", "greedy", "rssi"}
        assert len(result.wolt_retention) == 2
        assert result.wolt_retention[0] == pytest.approx(1.0)

    def test_wolt_reasonably_robust(self):
        result = run_robustness(noise_levels=(0.0, 0.3), n_trials=4,
                                n_extenders=8, n_users=20, seed=1)
        assert result.wolt_retention[1] >= 0.7

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            run_robustness(noise_levels=(-0.1,), n_trials=1)

    def test_main_formats(self):
        # Patch a tiny run through the module-level main for coverage.
        text = robustness.main(seed=0, n_trials=2)
        assert "robustness" in text.lower()


class TestSweeps:
    def test_extender_sweep_structure(self):
        result = sweep_extenders(extender_counts=(3, 8), n_users=12,
                                 n_trials=2, seed=0)
        assert result.values == (3.0, 8.0)
        assert len(result.ratio_wolt_greedy) == 2
        assert all(r > 0 for r in result.ratio_wolt_rssi)

    def test_user_sweep_structure(self):
        result = sweep_users(user_counts=(10, 20), n_extenders=5,
                             n_trials=2, seed=0)
        assert result.parameter == "n_users"
        assert len(result.ratio_wolt_greedy) == 2

    def test_plc_quality_crossover_direction(self):
        """Scaling capacities up weakly shrinks the WOLT/Greedy gap."""
        result = sweep_plc_quality(capacity_scales=(0.5, 8.0),
                                   n_extenders=6, n_users=18,
                                   n_trials=3, seed=0)
        assert result.ratio_wolt_greedy[0] >= \
            result.ratio_wolt_greedy[1] - 0.2

    def test_main_formats(self):
        text = sweeps.main(seed=0, n_trials=1)
        assert "Sweep over extender count" in text
        assert "WOLT/Greedy" in text
