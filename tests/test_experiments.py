"""Integration tests: the per-figure experiment modules reproduce the
paper's shape claims at reduced scale (the benchmarks run full scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig2, fig3, fig4, fig5, fig6
from repro.experiments.common import format_rows, lab_scenario


class TestCommon:
    def test_lab_scenario_shape(self):
        scenario = lab_scenario(seed=0)
        assert scenario.n_extenders == 3
        assert scenario.n_users == 7
        for i in range(7):
            assert len(scenario.reachable(i)) > 0

    def test_lab_scenario_deterministic(self):
        a, b = lab_scenario(1), lab_scenario(1)
        assert np.allclose(a.wifi_rates, b.wifi_rates)

    def test_format_rows(self):
        out = format_rows(["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in lines[2]


class TestFig2:
    def test_fig2a_shape(self):
        result = fig2.run_fig2a(seed=0, mac_sim_time_us=5e5)
        assert result.testbed.user1_mbps[0] > result.testbed.user1_mbps[-1]

    def test_fig2b_values(self):
        result = fig2.run_fig2b(seed=0)
        assert len(result.isolation_mbps) == 4

    def test_fig2c_ratios(self):
        result = fig2.run_fig2c(seed=0, mac_sim_time_us=2e6)
        assert set(result.testbed.shared_mbps) == {2, 3, 4}

    def test_main_formats(self):
        text = fig2.main(seed=0)
        assert "Fig 2a" in text and "Fig 2c" in text


class TestFig3:
    def test_exact_paper_numbers(self):
        result = fig3.run_fig3()
        assert result.rssi_aggregate == pytest.approx(21.82, abs=0.01)
        assert result.greedy_aggregate == pytest.approx(30.0)
        assert result.optimal_aggregate == pytest.approx(40.0)
        assert result.wolt_matches_optimal

    def test_main_formats(self):
        assert "WOLT matches optimal: True" in fig3.main()


class TestFig4:
    def test_fig4a_reduced_scale(self):
        result = fig4.run_fig4a(n_topologies=6, seed=0)
        assert result.mean_mbps["wolt"] > result.mean_mbps["greedy"]
        assert result.mean_mbps["wolt"] > result.mean_mbps["rssi"]
        assert len(result.per_topology) == 6

    def test_fig4b_fractions_sane(self):
        result = fig4.run_fig4b(n_topologies=6, seed=0)
        for frac in (result.improved_vs_greedy, result.degraded_vs_greedy,
                     result.improved_vs_rssi, result.degraded_vs_rssi):
            assert 0.0 <= frac <= 1.0

    def test_fig4c_fidelity(self):
        result = fig4.run_fig4c(seed=7)
        assert result.max_relative_error < 0.10
        assert len(result.testbed_user_mbps) == 7


class TestFig5:
    def test_shape(self):
        result = fig5.run_fig5(seed=3)
        assert result.best_total_delta_mbps > 0
        assert len(result.worst_wolt_mbps) == 3
        # Worst users under WOLT are indeed its lowest throughputs.
        assert max(result.worst_wolt_mbps) <= min(result.best_wolt_mbps)

    def test_main_formats(self):
        assert "Fig 5a" in fig5.main(seed=3)


class TestFig6:
    def test_fig6a_reduced_scale(self):
        result = fig6.run_fig6a(n_trials=8, seed=0)
        assert result.wolt_wins_all_trials
        assert result.mean_ratio > 1.5
        xs, ys = result.cdf("wolt")
        assert ys[-1] == pytest.approx(1.0)
        assert np.all(np.diff(xs) >= 0)

    def test_fig6bc_dynamics(self):
        result = fig6.run_fig6bc(n_epochs=2, seed=0)
        wolt = result.histories["wolt"]
        assert len(wolt) == 2
        assert result.reassignment_per_arrival <= 2.5
        assert result.series("wolt", "n_users") == [e.n_users
                                                    for e in wolt]

    def test_fairness_ordering(self):
        # 6 trials is too noisy for the ordering; 12 suffices.
        result = fig6.run_fairness(n_trials=12, seed=0)
        assert result.jain["wolt"] > result.jain["greedy"]
        for value in result.jain.values():
            assert 0.0 < value <= 1.0
