"""Tests for failure injection and recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import Scenario, UNASSIGNED
from repro.sim.failures import (FailureSimulation, fail_extenders,
                                reassociate_orphans)
from repro.sim.faults import FaultModel

from .conftest import random_scenario


class TestFailExtenders:
    def test_masks_columns(self, rng):
        sc = random_scenario(rng, 5, 3)
        dead = fail_extenders(sc, [1])
        assert np.all(dead.wifi_rates[:, 1] == 0.0)
        assert dead.plc_rates[1] == 0.0
        # Other columns untouched.
        assert np.allclose(dead.wifi_rates[:, 0], sc.wifi_rates[:, 0])

    def test_no_failures_is_copy(self, rng):
        sc = random_scenario(rng, 4, 2)
        same = fail_extenders(sc, [])
        assert np.allclose(same.wifi_rates, sc.wifi_rates)

    def test_out_of_range_rejected(self, rng):
        sc = random_scenario(rng, 4, 2)
        with pytest.raises(ValueError):
            fail_extenders(sc, [5])

    def test_all_dead_rejected_by_default(self, rng):
        """Killing every extender is almost always a caller bug."""
        sc = random_scenario(rng, 4, 3)
        with pytest.raises(ValueError, match="allow_all_failed"):
            fail_extenders(sc, [0, 1, 2])
        # Duplicate indices covering every extender count too.
        with pytest.raises(ValueError, match="allow_all_failed"):
            fail_extenders(sc, [0, 1, 2, 2, 0])

    def test_all_dead_opt_in(self, rng):
        sc = random_scenario(rng, 4, 3)
        dead = fail_extenders(sc, [0, 1, 2], allow_all_failed=True)
        assert np.all(dead.wifi_rates == 0.0)
        assert np.all(dead.plc_rates == 0.0)


class TestReassociateOrphans:
    def test_orphans_move_to_strongest_survivor(self, rng):
        sc = random_scenario(rng, 6, 3)
        dead = fail_extenders(sc, [0])
        assignment = np.zeros(6, dtype=int)  # everyone on the dead one
        recovered = reassociate_orphans(dead, assignment)
        for user in range(6):
            j = recovered[user]
            assert j in (1, 2)
            assert dead.wifi_rates[user, j] == pytest.approx(
                dead.wifi_rates[user, 1:].max())

    def test_survivor_users_stay_put(self, rng):
        sc = random_scenario(rng, 6, 3)
        dead = fail_extenders(sc, [0])
        assignment = np.full(6, 2, dtype=int)
        recovered = reassociate_orphans(dead, assignment)
        assert recovered.tolist() == [2] * 6

    def test_total_blackout_goes_offline(self):
        sc = Scenario(wifi_rates=np.array([[10.0, 20.0]]),
                      plc_rates=np.array([50.0, 50.0]))
        dead = fail_extenders(sc, [0, 1], allow_all_failed=True)
        recovered = reassociate_orphans(dead, [0])
        assert recovered.tolist() == [UNASSIGNED]


class TestFaultLayerInteraction:
    """fail_extenders / reassociate_orphans driven by a FaultModel
    brown-out schedule (the deterministic counterpart of
    FailureSimulation's random outages)."""

    def test_orphan_accounting_across_consecutive_failures(self, rng):
        sc = random_scenario(rng, 8, 4)
        model = FaultModel(brownout_schedule={0: (0,), 1: (0, 1)})
        assignment = np.zeros(8, dtype=int)  # everyone starts on 0
        # Epoch 0: extender 0 browns out; all 8 users are orphaned once.
        dead = fail_extenders(sc, model.brownouts_at(0))
        assignment = reassociate_orphans(dead, assignment)
        assert np.all(assignment != 0)
        # Epoch 1: extender 1 joins the outage; only the users that
        # landed on it are orphaned again — survivors are not touched,
        # so nobody is double-counted.
        dead = fail_extenders(sc, model.brownouts_at(1))
        on_one = int(np.sum(assignment == 1))
        moved = reassociate_orphans(dead, assignment)
        assert int(np.sum(moved != assignment)) == on_one
        assert np.all((moved >= 2) | (moved == UNASSIGNED))

    def test_all_extenders_down_guard(self, rng):
        sc = random_scenario(rng, 5, 3)
        model = FaultModel(brownout_schedule={0: (0, 1, 2)})
        dead = fail_extenders(sc, model.brownouts_at(0),
                              allow_all_failed=True)
        recovered = reassociate_orphans(dead, np.zeros(5, dtype=int))
        assert recovered.tolist() == [UNASSIGNED] * 5
        # Epochs without a scheduled brown-out leave the scenario whole.
        same = fail_extenders(sc, model.brownouts_at(1))
        assert np.allclose(same.wifi_rates, sc.wifi_rates)

    def test_recovery_after_blackout_reattaches_users(self, rng):
        sc = random_scenario(rng, 5, 2)
        model = FaultModel(brownout_schedule={0: (0, 1), 1: (1,)})
        dead = fail_extenders(sc, model.brownouts_at(0),
                              allow_all_failed=True)
        offline = reassociate_orphans(dead, np.zeros(5, dtype=int))
        assert np.all(offline == UNASSIGNED)
        # Extender 0 comes back in epoch 1: offline users reattach.
        partial = fail_extenders(sc, model.brownouts_at(1))
        back = reassociate_orphans(partial, offline)
        assert back.tolist() == [0] * 5


class TestFailureSimulation:
    def _sim(self, policy="wolt", seed=0, **kwargs):
        sc_seq, fail_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(sc_seq)
        sc = random_scenario(rng, 15, 5)
        return FailureSimulation(sc, policy,
                                 rng=np.random.default_rng(fail_seq),
                                 **kwargs)

    def test_history_grows(self):
        sim = self._sim()
        history = sim.run(5)
        assert [e.epoch for e in history] == [1, 2, 3, 4, 5]

    def test_never_total_blackout(self):
        sim = self._sim(fail_prob=1.0, recover_prob=0.0)
        for _ in range(5):
            sim.run_epoch()
            assert not sim.down.all()

    def test_throughput_positive_with_survivors(self):
        sim = self._sim(fail_prob=0.3)
        for stats in sim.run(6):
            assert stats.aggregate_throughput > 0

    def test_orphans_counted_on_failure(self):
        sim = self._sim(policy="rssi", fail_prob=0.9, recover_prob=0.0)
        stats = sim.run_epoch()
        if stats.failed_extenders:
            assert stats.orphaned_users >= 0

    def test_wolt_recovers_at_least_rssi_throughput(self):
        """Global re-solve recovers at least the orphan-fallback level
        on average (fixed-model scoring)."""
        means = {}
        for policy in ("wolt", "rssi"):
            sim = self._sim(policy=policy, seed=5, fail_prob=0.25,
                            plc_mode="fixed")
            means[policy] = np.mean(
                [e.aggregate_throughput for e in sim.run(8)])
        assert means["wolt"] >= means["rssi"] - 1e-6

    def test_no_failures_full_throughput(self):
        sim = self._sim(fail_prob=0.0)
        first = sim.run_epoch()
        assert first.failed_extenders == ()
        assert first.orphaned_users == 0
        assert first.offline_users == 0

    def test_validation(self, rng):
        sc = random_scenario(rng, 4, 2)
        with pytest.raises(ValueError):
            FailureSimulation(sc, "magic", rng)
        with pytest.raises(ValueError):
            FailureSimulation(sc, "wolt", rng, fail_prob=1.5)
        with pytest.raises(ValueError):
            FailureSimulation(sc, "wolt", rng).run(0)
