"""Tests for the α-fair association extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import (alpha_fair_utility, solve_alpha_fair)
from repro.core.problem import UNASSIGNED
from repro.core.wolt import solve_wolt

from .conftest import random_scenario


class TestUtility:
    def test_alpha_zero_is_total_throughput(self):
        assert alpha_fair_utility([10.0, 20.0], 0.0) == pytest.approx(30.0)

    def test_alpha_one_is_log(self):
        assert alpha_fair_utility([np.e, np.e ** 2], 1.0) == \
            pytest.approx(3.0)

    def test_alpha_two_is_negative_inverse(self):
        assert alpha_fair_utility([2.0, 4.0], 2.0) == pytest.approx(-0.75)

    def test_starvation_is_finite(self):
        assert np.isfinite(alpha_fair_utility([0.0, 10.0], 1.0))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            alpha_fair_utility([1.0], -0.5)

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0),
                    min_size=2, max_size=10),
           st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=100)
    def test_equalizing_helps_for_positive_alpha(self, xs, alpha):
        """Replacing the allocation with its mean never lowers the
        utility (concavity), strictly for unequal inputs and alpha>0."""
        mean = [float(np.mean(xs))] * len(xs)
        u_mean = alpha_fair_utility(mean, alpha)
        u_orig = alpha_fair_utility(xs, alpha)
        assert u_mean >= u_orig - 1e-6


class TestSolveAlphaFair:
    def test_alpha_zero_keeps_wolt_quality(self, rng):
        sc = random_scenario(rng, 12, 4)
        wolt = solve_wolt(sc).aggregate_throughput
        fair = solve_alpha_fair(sc, alpha=0.0)
        assert fair.aggregate_throughput >= wolt - 1e-6

    def test_complete_assignment(self, rng):
        sc = random_scenario(rng, 10, 3)
        result = solve_alpha_fair(sc, alpha=1.0)
        assert np.all(result.assignment != UNASSIGNED)
        assert result.alpha == 1.0

    def test_fairness_improves_with_alpha(self):
        """Across random instances, α=2 is on average at least as fair
        as α=0 (and strictly fairer somewhere)."""
        fair_gain = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            sc = random_scenario(rng, 12, 4)
            j0 = solve_alpha_fair(sc, alpha=0.0).jain
            j2 = solve_alpha_fair(sc, alpha=2.0).jain
            fair_gain.append(j2 - j0)
        assert np.mean(fair_gain) >= -0.01
        assert max(fair_gain) > 0.0

    def test_throughput_cost_of_fairness_bounded(self, rng):
        sc = random_scenario(rng, 12, 4)
        t0 = solve_alpha_fair(sc, alpha=0.0).aggregate_throughput
        t1 = solve_alpha_fair(sc, alpha=1.0).aggregate_throughput
        assert t1 >= 0.4 * t0  # proportional fairness is not ruinous

    def test_warm_start_accepted(self, rng):
        sc = random_scenario(rng, 8, 3)
        start = solve_wolt(sc).assignment
        result = solve_alpha_fair(sc, alpha=1.0,
                                  initial_assignment=start)
        assert np.all(result.assignment >= 0)

    def test_bad_warm_start_rejected(self, rng):
        sc = random_scenario(rng, 8, 3)
        with pytest.raises(ValueError):
            solve_alpha_fair(sc, initial_assignment=[0, 1])

    def test_capacities_respected(self, rng):
        sc = random_scenario(rng, 9, 3, capacities=True)
        result = solve_alpha_fair(sc, alpha=1.0)
        counts = np.bincount(result.assignment, minlength=3)
        assert np.all(counts <= sc.capacities)
