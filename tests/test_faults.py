"""Tests for the seeded fault-injection layer (repro.sim.faults).

Covers the FaultModel contract, the lossy transport's effect on the
Central Controller (drops, retries with backoff, failed handoffs,
graceful degradation), the lossy control-plane emulation including
brown-outs, and the trial runner's retry-and-TrialFailure path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import (CentralController, ScanReport,
                                   Transport)
from repro.core.problem import UNASSIGNED
from repro.core.wolt import solve_wolt
from repro.sim.faults import (ControlPlaneOutcome, CrashSchedule,
                              FaultModel, FaultyTransport, InjectedCrash,
                              run_faulty_control_plane)
from repro.sim.runner import TrialFailure, TrialResult, run_trials

from .conftest import random_scenario


def _report(uid: int, rates) -> ScanReport:
    return ScanReport(user_id=uid, wifi_rates=np.asarray(rates, float))


def _transport(rng_seed: int = 0, **model_kwargs) -> FaultyTransport:
    return FaultyTransport(FaultModel(**model_kwargs),
                           np.random.default_rng(rng_seed))


class TestFaultModel:
    def test_defaults_are_faultless(self):
        model = FaultModel()
        assert model.report_drop_prob == 0.0
        assert model.brownouts_at(0) == ()

    @pytest.mark.parametrize("kwargs", [
        {"report_drop_prob": -0.1},
        {"directive_drop_prob": 1.5},
        {"handoff_failure_prob": 2.0},
        {"rate_noise_fraction": -1.0},
        {"max_retries": -1},
        {"backoff_base_s": -0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_brownout_schedule_normalized(self):
        model = FaultModel(brownout_schedule={0: [1, 2], 2: (0,)})
        assert model.brownouts_at(0) == (1, 2)
        assert model.brownouts_at(1) == ()
        assert model.brownouts_at(2) == (0,)


class TestFaultyTransport:
    def test_faultless_model_is_lossless(self):
        transport = _transport()
        report = _report(1, [10.0, 0.0, 20.0])
        observed = transport.observe_report(report)
        assert np.array_equal(observed.wifi_rates, report.wifi_rates)
        assert transport.deliver_directive(None) is True
        assert transport.handoff_succeeds(None) is True

    def test_deterministic_for_fixed_seed(self):
        kwargs = dict(report_drop_prob=0.5, directive_drop_prob=0.5)
        a = _transport(3, **kwargs)
        b = _transport(3, **kwargs)
        pattern_a = [a.deliver_directive(None) for _ in range(50)]
        pattern_b = [b.deliver_directive(None) for _ in range(50)]
        assert pattern_a == pattern_b
        assert not all(pattern_a) and any(pattern_a)

    def test_rate_noise_preserves_reachability(self):
        transport = _transport(1, rate_noise_fraction=0.4)
        observed = transport.observe_report(_report(1, [10.0, 0.0, 20.0]))
        assert observed.wifi_rates[1] == 0.0
        assert observed.wifi_rates[0] > 0 and observed.wifi_rates[2] > 0
        assert not np.array_equal(observed.wifi_rates, [10.0, 0.0, 20.0])

    def test_exponential_backoff(self):
        transport = _transport(0, backoff_base_s=0.25)
        assert transport.backoff_s(0) == pytest.approx(0.25)
        assert transport.backoff_s(1) == pytest.approx(0.5)
        assert transport.backoff_s(2) == pytest.approx(1.0)


class _ScriptedTransport(Transport):
    """Delivery attempts succeed per a scripted list (True/False)."""

    def __init__(self, script, max_retries=2, handoffs_ok=True):
        self.script = list(script)
        self.max_retries = max_retries
        self.handoffs_ok = handoffs_ok

    def deliver_directive(self, directive):
        return self.script.pop(0) if self.script else True

    def handoff_succeeds(self, directive):
        return self.handoffs_ok

    def backoff_s(self, attempt):
        return 0.1 * (2.0 ** attempt)


class TestControllerUnderFaults:
    def test_dropped_report_never_reaches_cc(self):
        cc = CentralController(
            [60.0, 20.0],
            transport=_transport(0, report_drop_prob=1.0))
        assert cc.receive_scan_report(_report(1, [15.0, 10.0])) is None
        assert cc.stats.dropped_reports == 1
        assert cc.stats.scan_reports == 0
        assert cc.connected_users == []

    def test_dropped_directive_falls_back_to_strongest_rssi(self):
        cc = CentralController(
            [60.0, 20.0], policy="greedy",
            transport=_transport(0, directive_drop_prob=1.0,
                                 max_retries=1))
        assert cc.receive_scan_report(_report(1, [10.0, 25.0])) is None
        # Every attempt (1 send + 1 retry) was lost; the client camps on
        # its strongest-RSSI extender (index 1).
        assert cc.stats.dropped_directives == 1
        assert cc.stats.retries == 1
        assert cc.associations == {1: 1}

    def test_retry_recovers_from_transient_loss(self):
        transport = _ScriptedTransport([False, False, True])
        cc = CentralController([60.0, 20.0], transport=transport)
        directive = cc.receive_scan_report(_report(1, [15.0, 10.0]))
        assert directive is not None and directive.extender == 0
        assert cc.stats.retries == 2
        assert cc.stats.dropped_directives == 0
        assert cc.stats.backoff_wait_s == pytest.approx(0.1 + 0.2)
        assert cc.associations == {1: 0}

    def test_failed_handoff_keeps_previous_extender(self):
        transport = _ScriptedTransport([], handoffs_ok=False)
        cc = CentralController([60.0, 20.0], policy="wolt",
                               transport=transport)
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        before = cc.associations
        cc.reconfigure()  # Fig. 3 optimum wants to move user 1
        assert cc.stats.failed_handoffs == 1
        assert cc.stats.reassignments == 0
        assert cc.stats.handoff_time_s == 0.0
        assert cc.associations == before

    def test_reliable_transport_unchanged_stats(self):
        cc = CentralController([60.0, 20.0], policy="wolt")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        cc.reconfigure()
        assert cc.stats.dropped_reports == 0
        assert cc.stats.dropped_directives == 0
        assert cc.stats.retries == 0
        assert cc.stats.failed_handoffs == 0


class TestRunFaultyControlPlane:
    def _scenario(self, seed=0, n_users=10, n_extenders=4):
        return random_scenario(np.random.default_rng(seed), n_users,
                               n_extenders)

    def test_faultless_wolt_matches_solver(self):
        sc = self._scenario()
        outcome = run_faulty_control_plane(
            sc, "wolt", FaultModel(), np.random.default_rng(0))
        assert isinstance(outcome, ControlPlaneOutcome)
        assert np.array_equal(outcome.assignment,
                              solve_wolt(sc).assignment)
        assert outcome.offline_users == 0

    def test_total_loss_degrades_to_rssi_parking(self):
        sc = self._scenario()
        model = FaultModel(directive_drop_prob=1.0,
                           handoff_failure_prob=1.0)
        outcome = run_faulty_control_plane(
            sc, "wolt", model, np.random.default_rng(0))
        assert np.array_equal(outcome.assignment,
                              np.argmax(sc.wifi_rates, axis=1))

    def test_deterministic_for_fixed_seed(self):
        sc = self._scenario()
        model = FaultModel(report_drop_prob=0.3,
                           directive_drop_prob=0.3,
                           handoff_failure_prob=0.3,
                           rate_noise_fraction=0.2)
        a = run_faulty_control_plane(sc, "wolt", model,
                                     np.random.default_rng(7))
        b = run_faulty_control_plane(sc, "wolt", model,
                                     np.random.default_rng(7))
        assert np.array_equal(a.assignment, b.assignment)
        assert a.stats == b.stats

    def test_brownout_moves_clients_off_dead_extender(self):
        sc = self._scenario()
        model = FaultModel(brownout_schedule={1: (0,)})
        outcome = run_faulty_control_plane(
            sc, "rssi", model, np.random.default_rng(0), n_epochs=2)
        assert not np.any(outcome.assignment == 0)
        assert np.all(outcome.live.wifi_rates[:, 0] == 0.0)
        assert outcome.live.plc_rates[0] == 0.0

    def test_brownout_with_dropped_rereports_still_reassociates(self):
        # Even when every epoch-1 re-report is lost, physics moves the
        # orphans to their strongest survivor (reassociate_orphans).
        sc = self._scenario()
        model = FaultModel(report_drop_prob=1.0,
                           brownout_schedule={1: (0,)})
        outcome = run_faulty_control_plane(
            sc, "rssi", model, np.random.default_rng(0), n_epochs=2)
        assert not np.any(outcome.assignment == 0)
        survivors = sc.wifi_rates[:, 1:]
        expected = 1 + np.argmax(survivors, axis=1)
        assert np.array_equal(outcome.assignment, expected)

    def test_total_blackout_goes_offline(self):
        sc = self._scenario(n_extenders=2)
        model = FaultModel(brownout_schedule={0: (0, 1)})
        outcome = run_faulty_control_plane(
            sc, "rssi", model, np.random.default_rng(0))
        assert outcome.offline_users == sc.n_users
        assert np.all(outcome.assignment == UNASSIGNED)

    def test_validation(self):
        sc = self._scenario()
        with pytest.raises(ValueError):
            run_faulty_control_plane(sc, "rssi", FaultModel(),
                                     np.random.default_rng(0),
                                     n_epochs=0)


class TestCrashSchedule:
    def test_raises_for_scheduled_attempts_only(self):
        schedule = CrashSchedule({2: 2})
        schedule(0, 0)  # unscheduled trial: no-op
        with pytest.raises(InjectedCrash):
            schedule(2, 0)
        with pytest.raises(InjectedCrash):
            schedule(2, 1)
        schedule(2, 2)  # budget spent: succeeds

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule({0: -1})

    def test_scheduled_hang_sleeps_for_budgeted_attempts(self,
                                                        monkeypatch):
        naps = []
        monkeypatch.setattr("repro.sim.faults.time.sleep", naps.append)
        schedule = CrashSchedule({}, hangs={1: 1}, hang_s=7.5)
        schedule(0, 0)  # unscheduled trial: no-op
        schedule(1, 0)  # first attempt hangs
        schedule(1, 1)  # budget spent: succeeds
        assert naps == [7.5]

    def test_negative_hang_counts_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule({}, hangs={0: -1})


SCALE = dict(n_extenders=4, n_users=8, seed=424242)


class TestRunTrialsFaultTolerance:
    def test_transient_crash_retried_to_identical_result(self):
        clean = run_trials(3, policies=("rssi",), **SCALE)
        faulty = run_trials(3, policies=("rssi",), max_retries=2,
                            fault_hook=CrashSchedule({1: 2}), **SCALE)
        assert all(isinstance(t, TrialResult) for t in faulty)
        for a, b in zip(clean, faulty):
            assert np.array_equal(a.scenario.wifi_rates,
                                  b.scenario.wifi_rates)
            assert np.array_equal(a.outcomes["rssi"].assignment,
                                  b.outcomes["rssi"].assignment)

    def test_exhausted_trial_becomes_trial_failure(self):
        results = run_trials(4, policies=("rssi",), max_retries=2,
                             fault_hook=CrashSchedule({2: 99}), **SCALE)
        assert isinstance(results[2], TrialFailure)
        assert results[2].trial_index == 2
        assert results[2].attempts == 3
        assert results[2].error_type == "InjectedCrash"
        for index in (0, 1, 3):
            assert isinstance(results[index], TrialResult)

    def test_failure_bit_identical_across_worker_counts(self):
        kwargs = dict(policies=("wolt", "rssi"), max_retries=1,
                      fault_hook=CrashSchedule({0: 1, 2: 99}), **SCALE)
        serial = run_trials(4, **kwargs)
        parallel = run_trials(4, workers=3, **kwargs)
        assert [type(t) for t in serial] == [type(t) for t in parallel]
        assert isinstance(serial[2], TrialFailure)
        assert parallel[2] == serial[2]
        for a, b in zip(serial, parallel):
            if isinstance(a, TrialFailure):
                continue
            for policy in a.outcomes:
                assert np.array_equal(a.outcomes[policy].assignment,
                                      b.outcomes[policy].assignment)
                assert (a.outcomes[policy].aggregate_throughput
                        == b.outcomes[policy].aggregate_throughput)

    def test_max_retries_zero_still_captures_failures(self):
        results = run_trials(2, policies=("rssi",), max_retries=0,
                             fault_hook=CrashSchedule({0: 1}), **SCALE)
        assert isinstance(results[0], TrialFailure)
        assert results[0].attempts == 1
        assert isinstance(results[1], TrialResult)

    def test_legacy_mode_still_propagates(self):
        with pytest.raises(InjectedCrash):
            run_trials(2, policies=("rssi",),
                       fault_hook=CrashSchedule({0: 1}), **SCALE)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            run_trials(1, policies=("rssi",), max_retries=-1, **SCALE)


class TestRngIsolationRegression:
    """A policy's stream must not depend on its co-runners (bugfix)."""

    def test_random_identical_alone_and_with_others(self):
        alone = run_trials(3, policies=("random",), **SCALE)
        together = run_trials(3, policies=("wolt", "greedy", "rssi",
                                           "random"), **SCALE)
        for a, b in zip(alone, together):
            oa, ob = a.outcomes["random"], b.outcomes["random"]
            assert np.array_equal(oa.assignment, ob.assignment)
            assert oa.aggregate_throughput == ob.aggregate_throughput
            assert np.array_equal(oa.user_throughputs,
                                  ob.user_throughputs)

    def test_greedy_identical_alone_and_with_others(self):
        alone = run_trials(3, policies=("greedy",), **SCALE)
        together = run_trials(3, policies=("greedy", "random"), **SCALE)
        for a, b in zip(alone, together):
            assert np.array_equal(a.outcomes["greedy"].assignment,
                                  b.outcomes["greedy"].assignment)
