"""Tests for fleet-level chaos engineering: the FleetFaultModel
(validation, determinism, exclusivity), telemetry-blackout semantics,
zero-fault identity, chaos journal fingerprinting, torn-tail healing,
and the acceptance gate's own guard rails."""

from __future__ import annotations

import pickle

import pytest

from repro.fleet.chaos import (FleetFaultModel, acceptance_failures,
                               gate_spec, tear_journal_tail)
from repro.fleet.service import FleetService, format_epoch
from repro.fleet.spec import parse_fleet_spec
from repro.sim.checkpoint import CheckpointError, TrialStore, fingerprint
from repro.sim.faults import InjectedCrash

SMOKE = """
fleet: {name: smoke, seed: 7, plc_mode: redistribute}
buildings:
  - {name: hq, extenders: 4, users: 8, circuits: [a, a, b, b]}
generate:
  - {prefix: b, count: 2, extenders: 3, users: 5}
telemetry: {wifi_jitter: 0.03, plc_jitter: 0.08}
"""


def smoke_spec():
    return parse_fleet_spec(SMOKE)


class TestFaultModelValidation:
    @pytest.mark.parametrize("field", ["blackout_prob", "crash_prob",
                                       "hang_prob"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, rate):
        with pytest.raises(ValueError, match=field):
            FleetFaultModel(**{field: rate})

    def test_crash_and_hang_share_one_draw(self):
        with pytest.raises(ValueError, match="exclusive"):
            FleetFaultModel(crash_prob=0.7, hang_prob=0.7)

    def test_crash_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="crash_attempts"):
            FleetFaultModel(crash_attempts=0)

    def test_hang_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="hang_s"):
            FleetFaultModel(hang_s=0.0)

    def test_until_epoch_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="until_epoch"):
            FleetFaultModel(until_epoch=-1)

    def test_from_level_bounds(self):
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError, match="chaos level"):
                FleetFaultModel.from_level(bad)

    def test_from_level_composes_all_families(self):
        model = FleetFaultModel.from_level(0.6, until_epoch=4)
        assert model.blackout_prob == pytest.approx(0.15)
        assert model.crash_prob == pytest.approx(0.2)
        assert model.hang_prob == pytest.approx(0.1)
        # Crashes must outlast the default retry budget of 1 so the
        # carry-forward path is exercised, not just the retry path.
        assert model.crash_attempts == 2
        assert model.until_epoch == 4

    def test_trivial_and_active(self):
        assert FleetFaultModel().trivial
        assert not FleetFaultModel().active(0)
        storm = FleetFaultModel(crash_prob=0.5, until_epoch=3)
        assert not storm.trivial
        assert storm.active(2)
        assert not storm.active(3)
        forever = FleetFaultModel(blackout_prob=0.1)
        assert forever.active(10_000)


class TestDrawing:
    def test_blackout_is_deterministic(self):
        model = FleetFaultModel(blackout_prob=0.5)
        draws = [model.blackout(7, b, e)
                 for b in range(4) for e in range(16)]
        again = [model.blackout(7, b, e)
                 for b in range(4) for e in range(16)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_blackout_respects_until_epoch(self):
        model = FleetFaultModel(blackout_prob=1.0, until_epoch=2)
        assert model.blackout(7, 0, 1)
        assert not model.blackout(7, 0, 2)

    def test_shard_plan_is_deterministic_and_exclusive(self):
        model = FleetFaultModel(crash_prob=0.4, hang_prob=0.4)
        plan = model.shard_plan(7, 3, 64)
        again = model.shard_plan(7, 3, 64)
        assert plan.crashed == again.crashed
        assert plan.hung == again.hung
        assert plan.crashed and plan.hung
        assert not set(plan.crashed) & set(plan.hung)

    def test_shard_plan_empty_cases(self):
        assert FleetFaultModel(blackout_prob=0.5).shard_plan(7, 0, 8).empty
        assert FleetFaultModel(crash_prob=1.0).shard_plan(7, 0, 0).empty
        cleared = FleetFaultModel(crash_prob=1.0, until_epoch=1)
        assert cleared.shard_plan(7, 1, 8).empty
        assert cleared.shard_plan(7, 1, 8).schedule is None

    def test_schedule_is_picklable_and_crashes_planned_shards(self):
        model = FleetFaultModel(crash_prob=1.0, crash_attempts=2)
        plan = model.shard_plan(7, 0, 3)
        assert plan.crashed == (0, 1, 2)
        schedule = pickle.loads(pickle.dumps(plan.schedule))
        with pytest.raises(InjectedCrash):
            schedule(0, 0)
        with pytest.raises(InjectedCrash):
            schedule(0, 1)
        schedule(0, 2)  # third attempt survives


class TestBlackoutSemantics:
    def test_blackout_reuses_the_previous_report(self):
        spec = smoke_spec()
        storm = FleetFaultModel(blackout_prob=1.0, until_epoch=2)
        clean = FleetService(spec)
        dark = FleetService(spec, fault_model=storm)
        clean_texts = [format_epoch(clean.run_epoch())
                       for _ in range(4)]
        dark_texts = []
        dark_reports = []
        for _ in range(4):
            report = dark.run_epoch()
            dark_reports.append(report)
            dark_texts.append(format_epoch(report))
        # Epoch 0 has no previous report to lose: blackout degrades to
        # a normal observation, so epoch 0 matches the clean run.
        assert dark_texts[0] == clean_texts[0]
        # Epoch 1 re-decides from the epoch-0 report: the scenario is
        # unchanged, so the solve lands on the same assignment and the
        # aggregate holds steady while the clean run moves on.
        assert dark_texts[1] != clean_texts[1]
        assert dark_reports[1].aggregate_mbps == pytest.approx(
            dark_reports[0].aggregate_mbps)
        assert not dark_reports[1].directives
        # The storm clears at epoch 2; by epoch 3 the dark fleet has
        # converged back onto the clean twin exactly.
        assert dark_texts[3] == clean_texts[3]


class TestZeroFaultIdentity:
    def test_zero_fault_model_is_bit_identical_to_none(self):
        spec = smoke_spec()
        clean = FleetService(spec)
        zero = FleetService(spec, fault_model=FleetFaultModel())
        for _ in range(3):
            assert format_epoch(zero.run_epoch()) == format_epoch(
                clean.run_epoch())

    def test_trivial_model_keeps_the_clean_fingerprint(self, tmp_path):
        spec = smoke_spec()
        path = str(tmp_path / "fleet.jsonl")
        with FleetService(spec, journal=path,
                          fault_model=FleetFaultModel()) as service:
            service.run_epoch()
        # A clean (model-free) resume accepts the journal: trivial
        # models never reach the fingerprint.
        with FleetService(spec, journal=path, resume=True) as resumed:
            assert resumed.epoch == 1

    def test_nontrivial_model_changes_the_fingerprint(self, tmp_path):
        spec = smoke_spec()
        storm = FleetFaultModel(crash_prob=0.25)
        path = str(tmp_path / "fleet.jsonl")
        with FleetService(spec, journal=path,
                          fault_model=storm) as service:
            service.run_epoch()
        with pytest.raises(CheckpointError):
            FleetService(spec, journal=path, resume=True)
        with FleetService(spec, journal=path, resume=True,
                          fault_model=storm) as resumed:
            assert resumed.epoch == 1

    def test_operational_knobs_stay_out_of_the_fingerprint(self):
        from dataclasses import replace
        spec = smoke_spec()
        tuned = replace(spec, health=replace(
            spec.health, shard_timeout_s=30.0, retry_budget=5))
        # Deadlines and retry budgets are deployment knobs, not
        # science: changing them must not orphan existing journals.
        assert fingerprint(tuned.params()) == fingerprint(spec.params())
        # Breaker thresholds change which epochs solve at all, so they
        # *are* part of the experiment identity.
        strict = replace(spec, health=replace(
            spec.health, breaker_strikes=1))
        assert fingerprint(strict.params()) != fingerprint(
            spec.params())


class TestTornTail:
    def test_torn_tail_is_healed_on_resume(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        params = {"kind": "torn-tail-test"}
        store = TrialStore(path, fingerprint(params), params=params)
        store.append(0, {"value": 1})
        store.close()
        clean_bytes = (tmp_path / "store.jsonl").read_bytes()
        tear_journal_tail(path)
        assert (tmp_path / "store.jsonl").read_bytes() != clean_bytes
        resumed = TrialStore(path, fingerprint(params), params=params,
                             resume=True)
        assert set(resumed.records) == {0}
        resumed.close()
        assert (tmp_path / "store.jsonl").read_bytes() == clean_bytes


class TestAcceptanceGate:
    def test_gate_spec_is_a_valid_hair_trigger_fleet(self):
        spec = gate_spec()
        assert spec.n_buildings == 3
        assert spec.telemetry.dropout == 0.0
        assert spec.health.breaker_strikes == 1
        assert spec.health.retry_budget == 1

    def test_gate_requires_post_storm_epochs(self):
        with pytest.raises(ValueError, match="clear_after"):
            acceptance_failures(epochs=3, clear_after=3)
