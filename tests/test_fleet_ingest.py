"""Tests for the recorded-telemetry ingest boundary.

Covers the wire format (seeded property-style encode/decode round
trips), the :func:`~repro.fleet.ingest.read_stream` classifier (one
test per reject class, graceful and strict), the dead-letter journal,
the :class:`~repro.fleet.ingest.TelemetrySource` seam inside
:class:`~repro.fleet.service.FleetService` (replay identity, graceful
degradation, epoch caps), and a reduced run of the corruption fuzz
gate CI executes in full.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fleet.ingest import (DeadLetterJournal, MUTATION_KINDS,
                                RecordedTelemetry, REJECT_CLASSES,
                                StreamExhausted, StreamHeaderError,
                                StreamIntegrityError,
                                SyntheticTelemetry, TelemetryRecord,
                                _signed_line, acceptance_failures,
                                gate_spec, mutate_stream, read_stream,
                                record_stream, write_stream)
from repro.fleet.service import FleetService, format_epoch
from repro.fleet.spec import BuildingSpec, FleetSpec, TelemetryModel


def small_spec(seed: int = 5, dropout: float = 0.0) -> FleetSpec:
    return FleetSpec(
        name="mini", seed=seed,
        buildings=(BuildingSpec(name="a", n_extenders=3, n_users=4),
                   BuildingSpec(name="b", n_extenders=2, n_users=3)),
        telemetry=TelemetryModel(wifi_jitter=0.05, plc_jitter=0.05,
                                 dropout=dropout))


def shapes_of(spec: FleetSpec):
    return {b.name: (b.n_users, b.n_extenders)
            for b in spec.buildings}


def stream_lines(text: str):
    return text.rstrip("\n").split("\n")


def rebuild(header: str, records) -> str:
    return "\n".join([header, *records]) + "\n"


def edit_record(line: str, **changes) -> str:
    """Change fields of a wire record and re-sign it (valid crc)."""
    entry = json.loads(line)
    entry.update(changes)
    return _signed_line(entry)


class TestRoundTrip:
    def test_encode_decode_round_trips_seeded_corpus(self):
        # Hand-rolled property test (seeded, no external generators):
        # many random records, NaN probes included, must round-trip
        # the wire format to bit-identical arrays.
        spec = small_spec()
        shapes = shapes_of(spec)
        rng = np.random.default_rng(np.random.SeedSequence(1234))
        for trial in range(60):
            name = spec.buildings[int(rng.integers(2))].name
            n_users, n_extenders = shapes[name]
            wifi = rng.uniform(0.0, 300.0, size=(n_users, n_extenders))
            # Exercise extreme magnitudes: JSON must round-trip the
            # exact doubles, not a pretty-printed approximation.
            wifi[0, 0] = 1e-300 if trial % 2 else 123.456789012345678
            plc = rng.uniform(0.0, 600.0, size=n_extenders)
            plc[rng.random(n_extenders) < 0.3] = np.nan
            record = TelemetryRecord(building=name,
                                     epoch=int(rng.integers(50)),
                                     wifi=wifi, plc=plc)
            decoded = TelemetryRecord.decode(record.encode(), shapes)
            assert decoded.building == record.building
            assert decoded.epoch == record.epoch
            assert np.array_equal(decoded.wifi, record.wifi)
            assert np.array_equal(decoded.plc, record.plc,
                                  equal_nan=True)
            # And the re-encoding is byte-stable.
            assert decoded.encode() == record.encode()

    def test_round_trips_synthesized_observations(self):
        spec = small_spec(dropout=0.3)
        source = SyntheticTelemetry(spec)
        shapes = shapes_of(spec)
        for b, building in enumerate(spec.buildings):
            wifi, plc = source.observe(b, epoch=2)
            record = TelemetryRecord(building=building.name, epoch=2,
                                     wifi=np.asarray(wifi, dtype=float),
                                     plc=plc)
            decoded = TelemetryRecord.decode(record.encode(), shapes)
            assert np.array_equal(decoded.wifi, wifi)
            assert np.array_equal(decoded.plc, plc, equal_nan=True)

    def test_recording_is_bit_reproducible(self):
        spec = small_spec(dropout=0.1)
        assert record_stream(spec, 4) == record_stream(spec, 4)

    def test_invalid_record_construction_rejected(self):
        wifi = np.ones((2, 3))
        plc = np.ones(3)
        with pytest.raises(ValueError, match="finite"):
            TelemetryRecord("a", 0, wifi * np.nan, plc)
        with pytest.raises(ValueError, match="extenders"):
            TelemetryRecord("a", 0, wifi, np.ones(2))
        with pytest.raises(ValueError, match=">= 0"):
            TelemetryRecord("a", 0, wifi, plc - 5.0)


class TestClassification:
    """One focused test per reject class, graceful and strict."""

    def clean(self, spec=None, epochs=3):
        spec = spec or small_spec()
        return spec, record_stream(spec, epochs)

    def assert_class(self, spec, text, cls, missing_too=True):
        stream = read_stream(text, spec)
        assert stream.counts.get(cls, 0) >= 1
        assert sum(stream.rejects.get(e, {}).get(cls, 0)
                   for e in range(stream.start_epoch,
                                  stream.end_epoch)) \
            == stream.counts[cls]
        if missing_too:
            # The rejected record's slot is a hole the service
            # degrades around.
            assert stream.counts.get("missing-record", 0) >= 1
        with pytest.raises(StreamIntegrityError):
            read_stream(text, spec, strict=True)
        return stream

    def test_malformed(self):
        spec, text = self.clean()
        header, records = stream_lines(text)[0], stream_lines(text)[1:]
        records.insert(1, "{this is not json")
        self.assert_class(spec, rebuild(header, records), "malformed",
                          missing_too=False)

    def test_checksum_mismatch(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        entry = json.loads(lines[1])
        entry["epoch"] = entry["epoch"] + 1  # tampered, NOT re-signed
        lines[1] = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
        self.assert_class(spec, rebuild(lines[0], lines[1:]),
                          "checksum-mismatch")

    def test_unknown_version(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        lines[2] = edit_record(lines[2], v=99)
        self.assert_class(spec, rebuild(lines[0], lines[1:]),
                          "unknown-version")

    def test_bad_field(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        for change in ({"wifi": "fast"}, {"epoch": True},
                       {"plc": [1.0]}, {"extra_key": 1}):
            lines_copy = list(lines)
            lines_copy[1] = edit_record(lines_copy[1], **change)
            self.assert_class(spec, rebuild(lines_copy[0],
                                            lines_copy[1:]),
                              "bad-field")

    def test_nonfinite_and_negative_are_bad_fields(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        entry = json.loads(lines[1])
        entry["plc"][0] = float("inf")
        lines[1] = _signed_line(entry)
        self.assert_class(spec, rebuild(lines[0], lines[1:]),
                          "bad-field")
        entry = json.loads(stream_lines(text)[1])
        entry["wifi"][0][0] = -1.0
        lines = stream_lines(text)
        lines[1] = _signed_line(entry)
        self.assert_class(spec, rebuild(lines[0], lines[1:]),
                          "bad-field")

    def test_unknown_building(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        lines[1] = edit_record(lines[1], building="phantom")
        self.assert_class(spec, rebuild(lines[0], lines[1:]),
                          "unknown-building")

    def test_duplicate(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        records = lines[1:]
        records.insert(1, records[0])
        stream = self.assert_class(spec, rebuild(lines[0], records),
                                   "duplicate", missing_too=False)
        # The original record is kept; only the duplicate rejects.
        assert len(stream.records) == 3 * spec.n_buildings

    def test_out_of_order(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        records = lines[1:]
        n = spec.n_buildings
        # Move an epoch-0 record after the epoch-1 records.
        records[0], records[n] = records[n], records[0]
        self.assert_class(spec, rebuild(lines[0], records),
                          "out-of-order")

    def test_stale_epoch(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        header = json.loads(lines[0])
        header["start_epoch"] = 1  # window shifts; epoch 0 is stale
        self.assert_class(spec, rebuild(_signed_line(header),
                                        lines[1:]),
                          "stale-epoch")

    def test_missing_record(self):
        spec, text = self.clean()
        lines = stream_lines(text)
        del lines[1]
        stream = read_stream(rebuild(lines[0], lines[1:]), spec)
        assert stream.counts == {"missing-record": 1}
        with pytest.raises(StreamIntegrityError):
            read_stream(rebuild(lines[0], lines[1:]), spec,
                        strict=True)

    def test_clean_stream_is_clean(self):
        spec, text = self.clean()
        stream = read_stream(text, spec)
        assert stream.clean
        assert stream.counts == {}
        assert stream.rejects == {}
        assert len(stream.records) == 3 * spec.n_buildings
        # Strict mode accepts it too.
        assert read_stream(text, spec, strict=True).clean


class TestHeader:
    def test_damaged_header_fails_loud(self):
        spec = small_spec()
        text = record_stream(spec, 2)
        lines = stream_lines(text)
        damaged = lines[0].replace('"wolt-telemetry"',
                                   '"wolt-telemetrY"')
        with pytest.raises(StreamHeaderError, match="damaged"):
            read_stream(rebuild(damaged, lines[1:]), spec)

    def test_foreign_spec_refused(self):
        spec = small_spec(seed=5)
        other = small_spec(seed=6)
        text = record_stream(spec, 2)
        with pytest.raises(StreamHeaderError, match="different spec"):
            read_stream(text, other)

    def test_operational_knobs_do_not_bind_the_stream(self):
        # Streams bind to the telemetry-relevant spec half only: the
        # same recording replays under different plc_mode/health.
        spec = small_spec()
        text = record_stream(spec, 2)
        retuned = FleetSpec(name=spec.name, seed=spec.seed,
                            plc_mode="active",
                            buildings=spec.buildings,
                            telemetry=spec.telemetry)
        assert read_stream(text, retuned, strict=True).clean

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamHeaderError, match="empty"):
            read_stream("", small_spec())

    def test_headerless_stream_rejected(self):
        spec = small_spec()
        record = stream_lines(record_stream(spec, 1))[1]
        with pytest.raises(StreamHeaderError):
            read_stream(record + "\n", spec)


class TestDeadLetter:
    def test_quarantine_is_bounded_and_counted(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        journal = DeadLetterJournal(path, capacity=2)
        for i in range(5):
            journal.quarantine("malformed", i + 2, "broken", "raw")
        journal.close()
        entries = [json.loads(line) for line in
                   path.read_text().splitlines()]
        letters = [e for e in entries if e["kind"] == "dead-letter"]
        summary = entries[-1]
        assert len(letters) == 2  # capacity bound held
        assert summary["kind"] == "summary"
        assert summary["counts"] == {"malformed": 5}
        assert summary["suppressed"] == 3

    def test_reader_feeds_the_journal(self, tmp_path):
        spec = small_spec()
        text = record_stream(spec, 2)
        lines = stream_lines(text)
        lines[1] = edit_record(lines[1], building="phantom")
        path = tmp_path / "dead.jsonl"
        with DeadLetterJournal(path) as journal:
            stream = read_stream(rebuild(lines[0], lines[1:]), spec,
                                 dead_letter=journal)
        assert stream.counts["unknown-building"] == 1
        entries = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert any(e.get("class") == "unknown-building"
                   for e in entries)
        assert any(e.get("class") == "missing-record"
                   for e in entries)


class TestServiceSeam:
    def test_clean_replay_matches_synthetic_run(self, tmp_path):
        spec = small_spec(dropout=0.2)
        epochs = 3
        synth_journal = tmp_path / "synth.jsonl"
        with FleetService(spec, journal=str(synth_journal)) as synth:
            synth_reports, _ = synth.run(epochs)
        source = RecordedTelemetry(
            read_stream(record_stream(spec, epochs), spec), spec)
        replay_journal = tmp_path / "replay.jsonl"
        with FleetService(spec, journal=str(replay_journal),
                          source=source) as replay:
            replay_reports, _ = replay.run(epochs)
        assert [format_epoch(r) for r in synth_reports] \
            == [format_epoch(r) for r in replay_reports]
        assert synth_journal.read_bytes() == replay_journal.read_bytes()

    def test_dirty_stream_degrades_and_is_quantified(self):
        spec = small_spec()
        text = record_stream(spec, 3)
        lines = stream_lines(text)
        lines[1] = edit_record(lines[1], building="phantom")
        stream = read_stream(rebuild(lines[0], lines[1:]), spec)
        with FleetService(spec,
                          source=RecordedTelemetry(stream, spec)
                          ) as service:
            reports, _ = service.run(3)
        total = sum(r.n_rejected_records for r in reports)
        assert total == sum(stream.counts.values())
        rejected = {cls: n for r in reports for cls, n in r.rejected}
        assert rejected.get("unknown-building") == 1
        assert all(np.isfinite(r.aggregate_mbps) for r in reports)
        # The degradation is visible in the rendered epoch too.
        dirty_epoch = next(r for r in reports
                           if r.n_rejected_records)
        assert "rejected:" in format_epoch(dirty_epoch)

    def test_stream_exhaustion_is_loud(self):
        spec = small_spec()
        source = RecordedTelemetry(
            read_stream(record_stream(spec, 2), spec), spec)
        with FleetService(spec, source=source) as service:
            service.run(2)
            with pytest.raises(StreamExhausted):
                service.run_epoch()

    def test_recorded_source_refuses_chaos(self):
        from repro.fleet.chaos import FleetFaultModel
        spec = small_spec()
        source = RecordedTelemetry(
            read_stream(record_stream(spec, 2), spec), spec)
        with pytest.raises(ValueError, match="chaos"):
            FleetService(spec, source=source,
                         fault_model=FleetFaultModel.from_level(0.5))

    def test_strict_load_fails_fast(self, tmp_path):
        spec = small_spec()
        mutation = mutate_stream(record_stream(spec, 3), "checksum", 0)
        path = tmp_path / "stream.jsonl"
        path.write_text(mutation.text, encoding="utf-8")
        with pytest.raises(StreamIntegrityError):
            RecordedTelemetry.load(path, spec, strict=True)

    def test_write_stream_then_load(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "stream.jsonl"
        n = write_stream(path, spec, 2)
        assert n == 2 * spec.n_buildings
        source = RecordedTelemetry.load(path, spec)
        assert source.n_rejected == 0
        wifi, plc = source.observe(0, 0)
        expected_wifi, expected_plc = \
            SyntheticTelemetry(spec).observe(0, 0)
        assert np.array_equal(wifi, expected_wifi)
        assert np.array_equal(plc, expected_plc, equal_nan=True)

    def test_observe_returns_copies(self):
        spec = small_spec()
        source = RecordedTelemetry(
            read_stream(record_stream(spec, 1), spec), spec)
        wifi, _ = source.observe(0, 0)
        wifi[0, 0] = -1.0
        wifi_again, _ = source.observe(0, 0)
        assert wifi_again[0, 0] >= 0.0


class TestFuzzGate:
    def test_every_mutation_kind_is_exercised(self):
        spec = gate_spec()
        text = record_stream(spec, 4)
        for kind in MUTATION_KINDS:
            mutation = mutate_stream(text, kind, seed=0)
            assert mutation.text != text
            assert mutation.header_damage or mutation.expected

    def test_mutations_are_seeded(self):
        spec = gate_spec()
        text = record_stream(spec, 4)
        for kind in MUTATION_KINDS:
            assert mutate_stream(text, kind, 7).text \
                == mutate_stream(text, kind, 7).text

    def test_reduced_gate_passes(self):
        # CI runs the full gate (python -m repro.fleet.ingest); the
        # unit suite keeps a reduced single-seed pass for fast signal.
        failures = acceptance_failures(epochs=3, seeds=(0,))
        assert failures == []

    def test_reject_classes_are_exhaustive(self):
        assert len(set(REJECT_CLASSES)) == 9
