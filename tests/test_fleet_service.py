"""Tests for the campus FleetService: epoch atomicity, dry-run
semantics, journal/resume bit-identity, shard-failure carry-forward,
quarantine masking, and the ``wolt serve`` CLI (golden-file stable)."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.cli import CHECKPOINT_ERROR_EXIT, main
from repro.core.problem import UNASSIGNED
from repro.fleet import parse_fleet_spec
from repro.fleet.service import FleetService, format_epoch
from repro.sim.checkpoint import CheckpointError
from repro.sim.dispatch import InterruptState, WorkFailure

DATA = Path(__file__).parent / "data"

SMOKE = """
fleet: {name: smoke, seed: 7, plc_mode: redistribute}
buildings:
  - {name: hq, extenders: 4, users: 8, circuits: [a, a, b, b]}
generate:
  - {prefix: b, count: 2, extenders: 3, users: 5}
telemetry: {wifi_jitter: 0.03, plc_jitter: 0.08}
"""


def smoke_spec(**head):
    spec = parse_fleet_spec(SMOKE)
    if not head:
        return spec
    from repro.fleet.spec import FleetSpec
    values = {"name": spec.name, "seed": spec.seed,
              "plc_mode": spec.plc_mode, "buildings": spec.buildings,
              "telemetry": spec.telemetry, "health": spec.health}
    values.update(head)
    return FleetSpec(**values)


class TestEpochLoop:
    def test_epoch_applies_and_advances(self):
        service = FleetService(smoke_spec())
        report = service.run_epoch()
        assert report.epoch == 0
        assert report.applied
        assert service.epoch == 1
        assert report.aggregate_mbps > 0
        assert all((b.assignment != UNASSIGNED).any()
                   for b in service._buildings)
        # Every user got an initial placement directive.
        assert len(report.directives) == service.spec.n_users

    def test_epochs_are_deterministic(self):
        a = FleetService(smoke_spec())
        b = FleetService(smoke_spec())
        for _ in range(3):
            assert (format_epoch(a.run_epoch())
                    == format_epoch(b.run_epoch()))

    def test_parallel_dispatch_is_bit_identical(self):
        serial = FleetService(smoke_spec())
        parallel = FleetService(smoke_spec(), workers=2, chunk_size=2)
        for _ in range(2):
            assert (format_epoch(serial.run_epoch())
                    == format_epoch(parallel.run_epoch()))

    def test_run_validates_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            FleetService(smoke_spec()).run(0)


class TestDryRun:
    def test_dry_run_applies_nothing(self):
        service = FleetService(smoke_spec())
        before = [b.assignment.copy() for b in service._buildings]
        report = service.run_epoch(dry_run=True)
        assert not report.applied
        for state, old in zip(service._buildings, before):
            np.testing.assert_array_equal(state.assignment, old)

    def test_dry_run_still_advances_the_world(self):
        # The epoch counter and telemetry move; associations do not.
        service = FleetService(smoke_spec())
        first = service.run_epoch(dry_run=True)
        second = service.run_epoch(dry_run=True)
        assert (first.epoch, second.epoch) == (0, 1)
        assert format_epoch(first) != format_epoch(second)

    def test_dry_run_writes_no_journal_records(self, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        with FleetService(smoke_spec(), journal=journal) as service:
            service.run_epoch(dry_run=True)
            assert service._store is not None
            assert service._store.records == {}


class TestJournalResume:
    def test_resume_continues_bit_identically(self, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        straight = FleetService(smoke_spec())
        expected = [format_epoch(straight.run_epoch())
                    for _ in range(4)]
        with FleetService(smoke_spec(), journal=journal) as first:
            got = [format_epoch(first.run_epoch()) for _ in range(2)]
        with FleetService(smoke_spec(), journal=journal,
                          resume=True) as second:
            assert second.epoch == 2
            got += [format_epoch(second.run_epoch())
                    for _ in range(2)]
        assert got == expected

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            FleetService(smoke_spec(), resume=True)

    def test_changed_spec_is_rejected(self, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        with FleetService(smoke_spec(), journal=journal) as service:
            service.run_epoch()
        with pytest.raises(CheckpointError):
            FleetService(smoke_spec(seed=8), journal=journal,
                         resume=True)


class TestInterruption:
    def test_interrupted_epoch_is_discarded_whole(self):
        service = FleetService(smoke_spec())
        service.run_epoch()
        before = [b.assignment.copy() for b in service._buildings]
        state = InterruptState()
        state.signal_name = "SIGINT"
        assert service.run_epoch(state=state) is None
        assert service.epoch == 1  # the discarded epoch will re-run
        for bstate, old in zip(service._buildings, before):
            np.testing.assert_array_equal(bstate.assignment, old)

    def test_run_reports_the_signal_and_journals_it(self, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        state = InterruptState()
        state.signal_name = "SIGTERM"
        with FleetService(smoke_spec(), journal=journal) as service:
            reports, interrupted = service.run(3, state=state)
            assert (reports, interrupted) == ([], "SIGTERM")
            events = [e for e in service._store.events
                      if e.get("event") == "interrupted"]
            assert events and events[-1]["signal"] == "SIGTERM"


class TestShardFailureCarryForward:
    def test_failed_shard_keeps_previous_association(self, monkeypatch):
        import repro.fleet.service as service_mod
        service = FleetService(smoke_spec())
        service.run_epoch()
        before = service._buildings[0].assignment.copy()
        real = service_mod._solve_shard

        def flaky(plc_mode, spec):
            if spec.item.building == 0:
                return WorkFailure(index=spec.index, attempts=1,
                                   error_type="RuntimeError",
                                   error="injected shard failure")
            return real(plc_mode, spec)

        monkeypatch.setattr(service_mod, "_solve_shard", flaky)
        report = service.run_epoch()
        assert report.n_shard_failures >= 1
        hq = report.buildings[0]
        assert hq.n_shard_failures == hq.n_segments
        # Users of the failed building keep their old extenders.
        np.testing.assert_array_equal(
            service._buildings[0].assignment, before)
        assert hq.directives == ()
        # Healthy buildings were settled normally.
        assert report.buildings[1].n_shard_failures == 0


class TestQuarantineMasking:
    def test_dropped_out_extenders_are_masked_from_solves(self):
        # dropout=1.0: every PLC report is NaN, so the monitor
        # quarantines all it can (never the last healthy one) and the
        # effective scenario zeroes those columns.
        spec = smoke_spec()
        from repro.fleet.spec import FleetSpec, TelemetryModel
        spec = FleetSpec(name=spec.name, seed=spec.seed,
                         plc_mode=spec.plc_mode,
                         buildings=spec.buildings[:1],
                         telemetry=TelemetryModel(dropout=1.0),
                         health=spec.health)
        service = FleetService(spec)
        report = service.run_epoch()
        hq = report.buildings[0]
        assert len(hq.quarantined) == 3  # 4 extenders, 1 survivor
        survivors = (set(range(4)) - set(hq.quarantined))
        assignment = service._buildings[0].assignment
        attached = assignment[assignment != UNASSIGNED]
        assert set(attached.tolist()) <= survivors


class TestServeCli:
    def test_dry_run_output_matches_golden_file(self, capsys):
        code = main(["serve", "--spec",
                     os.fspath(DATA / "fleet_smoke.yaml"),
                     "--epochs", "2", "--dry-run"])
        assert code == 0
        golden = (DATA / "fleet_smoke_golden.txt").read_text(
            encoding="utf-8")
        assert capsys.readouterr().out == golden

    def test_dry_run_is_repeatable_byte_for_byte(self, capsys):
        argv = ["serve", "--spec",
                os.fspath(DATA / "fleet_smoke.yaml"),
                "--epochs", "2", "--dry-run", "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_journal_roundtrip_via_cli(self, capsys, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        spec = os.fspath(DATA / "fleet_smoke.yaml")
        assert main(["serve", "--spec", spec, "--epochs", "1",
                     "--journal", journal, "--quiet"]) == 0
        first = capsys.readouterr().out
        assert "journal" in first
        assert main(["serve", "--spec", spec, "--epochs", "1",
                     "--journal", journal, "--resume",
                     "--quiet"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed" in resumed and "epoch 1" in resumed

    def test_fingerprint_mismatch_exit_code(self, capsys, tmp_path):
        journal = os.fspath(tmp_path / "fleet.jsonl")
        spec = os.fspath(DATA / "fleet_smoke.yaml")
        assert main(["serve", "--spec", spec, "--epochs", "1",
                     "--journal", journal, "--quiet"]) == 0
        capsys.readouterr()
        other = tmp_path / "other.yaml"
        other.write_text(
            Path(spec).read_text(encoding="utf-8").replace(
                "seed: 42", "seed: 43"), encoding="utf-8")
        code = main(["serve", "--spec", os.fspath(other),
                     "--epochs", "1", "--journal", journal,
                     "--resume", "--quiet"])
        assert code == CHECKPOINT_ERROR_EXIT
        assert "checkpoint error" in capsys.readouterr().err

    def test_resume_without_journal_is_usage_error(self, capsys):
        code = main(["serve", "--spec",
                     os.fspath(DATA / "fleet_smoke.yaml"),
                     "--resume"])
        assert code == 2
        assert "--journal" in capsys.readouterr().err

    def test_bad_epochs_is_usage_error(self, capsys):
        code = main(["serve", "--spec",
                     os.fspath(DATA / "fleet_smoke.yaml"),
                     "--epochs", "0"])
        assert code == 2
        assert "--epochs" in capsys.readouterr().err


class TestDeadlinesAndRetries:
    def test_operational_knobs_come_from_the_spec(self):
        from repro.fleet.spec import HealthSettings
        spec = smoke_spec(health=HealthSettings(shard_timeout_s=7.5,
                                                retry_budget=3))
        service = FleetService(spec)
        assert service.timeout_s == 7.5
        assert service.retry_budget == 3
        # Constructor arguments override the spec.
        tuned = FleetService(spec, timeout_s=2.0, retry_budget=0)
        assert tuned.timeout_s == 2.0
        assert tuned.retry_budget == 0

    def test_knob_validation(self):
        from repro.fleet.chaos import FleetFaultModel
        with pytest.raises(ValueError, match="timeout_s"):
            FleetService(smoke_spec(), timeout_s=0.0)
        with pytest.raises(ValueError, match="retry_budget"):
            FleetService(smoke_spec(), retry_budget=-1)
        # Hang faults dispatched to a pool without a deadline would
        # stall the epoch forever: rejected up front.
        with pytest.raises(ValueError, match="timeout_s"):
            FleetService(smoke_spec(), workers=2,
                         fault_model=FleetFaultModel(hang_prob=0.5))

    def test_transient_crash_succeeds_on_retry(self):
        # Regression for the previously hardcoded retry budget: a
        # shard that crashes once and a budget of one retry must make
        # the epoch indistinguishable from a clean one.
        from repro.fleet.chaos import FleetFaultModel
        storm = FleetFaultModel(crash_prob=1.0, crash_attempts=1,
                                until_epoch=1)
        clean = FleetService(smoke_spec())
        retried = FleetService(smoke_spec(), retry_budget=1,
                               fault_model=storm)
        clean_report = clean.run_epoch()
        retried_report = retried.run_epoch()
        assert retried_report.n_shard_failures == 0
        assert format_epoch(retried_report) == format_epoch(
            clean_report)

    def test_exhausted_retry_budget_is_an_explicit_failure(self):
        from repro.fleet.chaos import FleetFaultModel
        storm = FleetFaultModel(crash_prob=1.0, crash_attempts=1,
                                until_epoch=1)
        service = FleetService(smoke_spec(), retry_budget=0,
                               fault_model=storm)
        report = service.run_epoch()
        assert report.n_shard_failures == report.n_shards
        assert report.n_shard_timeouts == 0  # crashes, not reaps
        assert report.n_degraded_buildings == len(report.buildings)
        assert all(b.staleness == 1 for b in report.buildings)

    def test_hung_shard_no_longer_stalls_the_epoch(self):
        # Before per-shard deadlines, _dispatch had no timeout: a
        # single hung worker made run_epoch() block for the full
        # hang_s (an hour here) — this test then failed by hanging.
        import time
        from repro.fleet.chaos import FleetFaultModel
        storm = FleetFaultModel(hang_prob=1.0, hang_s=3600.0,
                                until_epoch=1)
        service = FleetService(smoke_spec(), workers=2,
                               timeout_s=1.0, fault_model=storm)
        started = time.monotonic()
        report = service.run_epoch()
        elapsed = time.monotonic() - started
        assert elapsed < 120
        assert report.n_shard_timeouts == report.n_shards >= 1
        assert report.n_shard_failures == report.n_shard_timeouts
        assert all(b.n_shard_timeouts == b.n_segments
                   for b in report.buildings)
        # The storm clears after epoch 0: the fleet solves again.
        second = service.run_epoch()
        assert second.n_shard_failures == 0
        assert second.n_degraded_buildings == 0

    def test_serial_hang_synthesis_matches_the_pool(self):
        # The serial path never sleeps: planned hangs are synthesized
        # as the same timeout failure the pool supervisor reaps, so
        # serial and pooled chaos stay bit-identical.
        from repro.fleet.chaos import FleetFaultModel
        storm = FleetFaultModel(hang_prob=1.0, hang_s=3600.0,
                                until_epoch=1)
        serial = FleetService(smoke_spec(), fault_model=storm)
        pooled = FleetService(smoke_spec(), workers=2, timeout_s=1.0,
                              fault_model=storm)
        for _ in range(2):
            assert (format_epoch(serial.run_epoch())
                    == format_epoch(pooled.run_epoch()))


class TestCircuitBreaker:
    @staticmethod
    def _fail_building_zero(monkeypatch, switch):
        import repro.fleet.service as service_mod
        real = service_mod._solve_shard

        def flaky(config, spec):
            if switch["failing"] and spec.item.building == 0:
                return WorkFailure(index=spec.index, attempts=1,
                                   error_type="RuntimeError",
                                   error="injected shard failure")
            return real(config, spec)

        monkeypatch.setattr(service_mod, "_solve_shard", flaky)

    def test_breaker_trips_skips_probes_and_closes(self, monkeypatch):
        from repro.fleet.spec import HealthSettings
        spec = smoke_spec(health=HealthSettings(
            breaker_strikes=2, breaker_probation_epochs=2))
        switch = {"failing": True}
        self._fail_building_zero(monkeypatch, switch)
        service = FleetService(spec)

        # Two consecutive failed epochs trip the breaker.
        first = service.run_epoch().buildings[0]
        assert (first.staleness, first.breaker_open) == (1, False)
        assert first.n_segments > 0
        second = service.run_epoch().buildings[0]
        assert (second.staleness, second.breaker_open) == (2, True)

        # Open breaker: the building is skipped (no shards solved)
        # until the probation window elapses.
        for expected_staleness in (3, 4):
            skipped = service.run_epoch().buildings[0]
            assert skipped.n_segments == 0
            assert skipped.breaker_open
            assert skipped.staleness == expected_staleness

        # Probe epoch while still failing: the open window restarts.
        probe = service.run_epoch().buildings[0]
        assert probe.n_segments > 0
        assert probe.breaker_open
        assert probe.staleness == 5

        # Fault cleared: two more idle epochs, then a clean probe
        # closes the breaker and staleness resets.
        switch["failing"] = False
        for expected_staleness in (6, 7):
            skipped = service.run_epoch().buildings[0]
            assert skipped.n_segments == 0
            assert skipped.staleness == expected_staleness
        closed = service.run_epoch().buildings[0]
        assert closed.n_segments > 0
        assert not closed.breaker_open
        assert closed.staleness == 0
        # Healthy buildings never noticed.
        assert all(not b.breaker_open and b.staleness == 0
                   for b in service.run_epoch().buildings[1:])

    def test_breaker_events_are_journaled(self, monkeypatch, tmp_path):
        from repro.fleet.spec import HealthSettings
        spec = smoke_spec(health=HealthSettings(
            breaker_strikes=1, breaker_probation_epochs=1))
        switch = {"failing": True}
        self._fail_building_zero(monkeypatch, switch)
        journal = os.fspath(tmp_path / "fleet.jsonl")
        with FleetService(spec, journal=journal) as service:
            service.run_epoch()   # trip
            service.run_epoch()   # skip
            service.run_epoch()   # probe, still failing
            switch["failing"] = False
            service.run_epoch()   # skip
            service.run_epoch()   # clean probe closes
            names = [e["event"] for e in service._store.events
                     if e["event"].startswith("breaker-")]
        assert names == ["breaker-open", "breaker-probe-failed",
                         "breaker-close"]

    def test_breaker_state_survives_resume_bit_identically(
            self, monkeypatch, tmp_path):
        from repro.fleet.spec import HealthSettings
        health = HealthSettings(breaker_strikes=1,
                                breaker_probation_epochs=2)
        switch = {"failing": True}
        self._fail_building_zero(monkeypatch, switch)

        straight = FleetService(smoke_spec(health=health))
        expected = [format_epoch(straight.run_epoch())
                    for _ in range(6)]

        journal = os.fspath(tmp_path / "fleet.jsonl")
        with FleetService(smoke_spec(health=health),
                          journal=journal) as first:
            got = [format_epoch(first.run_epoch()) for _ in range(3)]
        # Resume mid-breaker-cycle: open/streak/staleness counters
        # must come back exactly, or the probe schedule would shift.
        with FleetService(smoke_spec(health=health), journal=journal,
                          resume=True) as second:
            assert second.epoch == 3
            assert second._buildings[0].breaker_open
            got += [format_epoch(second.run_epoch())
                    for _ in range(3)]
        assert got == expected

    def test_breaker_advances_in_dry_run(self, monkeypatch):
        from repro.fleet.spec import HealthSettings
        spec = smoke_spec(health=HealthSettings(
            breaker_strikes=1, breaker_probation_epochs=2))
        switch = {"failing": True}
        self._fail_building_zero(monkeypatch, switch)
        service = FleetService(spec)
        report = service.run_epoch(dry_run=True)
        assert not report.applied
        assert report.buildings[0].breaker_open
        assert service._buildings[0].breaker_open


class TestServeChaosCli:
    SPEC = os.fspath(DATA / "fleet_smoke.yaml")

    def test_chaos_run_reports_failures(self, capsys):
        assert main(["serve", "--spec", self.SPEC, "--epochs", "2",
                     "--chaos", "1.0", "--retry-budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "chaos: blackout" in out
        assert "shard failures" in out

    def test_nonpositive_timeout_is_usage_error(self, capsys):
        code = main(["serve", "--spec", self.SPEC,
                     "--timeout-s", "0"])
        assert code == 2
        assert "--timeout-s must be positive" in capsys.readouterr().err

    def test_timeout_without_workers_is_usage_error(self, capsys):
        code = main(["serve", "--spec", self.SPEC,
                     "--timeout-s", "5"])
        assert code == 2
        assert "--timeout-s requires --workers" in (
            capsys.readouterr().err)

    def test_negative_retry_budget_is_usage_error(self, capsys):
        code = main(["serve", "--spec", self.SPEC,
                     "--retry-budget", "-1"])
        assert code == 2
        assert "--retry-budget" in capsys.readouterr().err

    def test_chaos_level_out_of_range_is_usage_error(self, capsys):
        code = main(["serve", "--spec", self.SPEC, "--chaos", "1.5"])
        assert code == 2
        assert "--chaos level" in capsys.readouterr().err

    def test_chaos_hangs_with_pool_need_a_deadline(self, capsys):
        code = main(["serve", "--spec", self.SPEC, "--chaos", "0.5",
                     "--workers", "2"])
        assert code == 2
        assert "--timeout-s" in capsys.readouterr().err
