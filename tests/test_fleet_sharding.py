"""Tests for topology sharding: coupling components, segment
splitting, scatter/gather, and the shard-equivalence contract (per-
shard solves concatenated are bit-identical to the whole-building
reference when PLC segments share no extender)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import UNASSIGNED, Scenario
from repro.core.wolt import solve_wolt
from repro.fleet.sharding import (Segment, coupling_components,
                                  scatter_assignment,
                                  solve_segments_reference,
                                  split_segments)
from repro.net.engine import evaluate
from repro.net.topology import enterprise_floor
from repro.plc.sharing import PLC_MODES


def block_scenario(seed, sizes):
    """Block-diagonal scenario from independent enterprise floors.

    Returns (composite, blocks, circuits): users of one block hear no
    extender of another, and each block gets its own circuit label —
    electrically and radio-wise independent PLC segments.
    """
    rng_seeds = np.random.SeedSequence(seed).spawn(len(sizes))
    blocks = [enterprise_floor(n_ext, n_users,
                               np.random.default_rng(s))
              for (n_ext, n_users), s in zip(sizes, rng_seeds)]
    n_ext = sum(b.n_extenders for b in blocks)
    n_users = sum(b.n_users for b in blocks)
    wifi = np.zeros((n_users, n_ext))
    plc = np.zeros(n_ext)
    circuits = []
    u0 = e0 = 0
    for label, block in enumerate(blocks):
        wifi[u0:u0 + block.n_users,
             e0:e0 + block.n_extenders] = block.wifi_rates
        plc[e0:e0 + block.n_extenders] = block.plc_rates
        circuits.extend([str(label)] * block.n_extenders)
        u0 += block.n_users
        e0 += block.n_extenders
    return Scenario(wifi_rates=wifi, plc_rates=plc), blocks, circuits


class TestCouplingComponents:
    def test_no_circuits_is_one_component(self):
        scenario, _, _ = block_scenario(0, [(3, 5), (2, 4)])
        assert coupling_components(scenario) == [(0, 1, 2, 3, 4)]

    def test_blocks_split_along_circuits(self):
        scenario, _, circuits = block_scenario(1, [(3, 5), (2, 4)])
        assert (coupling_components(scenario, circuits)
                == [(0, 1, 2), (3, 4)])

    def test_interference_edge_merges_circuits(self):
        scenario, _, circuits = block_scenario(2, [(2, 3), (2, 3)])
        wifi = scenario.wifi_rates.copy()
        wifi[0, 2] = 10.0  # user 0 (block 0) now hears extender 2
        bridged = Scenario(wifi_rates=wifi,
                           plc_rates=scenario.plc_rates)
        assert (coupling_components(bridged, circuits)
                == [(0, 1, 2, 3)])

    def test_shared_circuit_merges_isolated_cells(self):
        # No user hears both extenders, but they share a powerline
        # circuit: still one PLC medium, one component.
        scenario = Scenario(
            wifi_rates=np.array([[50.0, 0.0], [0.0, 50.0]]),
            plc_rates=np.array([100.0, 100.0]))
        assert (coupling_components(scenario, ["a", "a"])
                == [(0, 1)])
        assert (coupling_components(scenario, ["a", "b"])
                == [(0,), (1,)])

    def test_circuit_length_mismatch_rejected(self):
        scenario, _, _ = block_scenario(3, [(2, 3)])
        with pytest.raises(ValueError, match="circuits"):
            coupling_components(scenario, ["a"])


class TestSplitSegments:
    def test_segments_carry_their_blocks_exactly(self):
        scenario, blocks, circuits = block_scenario(
            4, [(3, 6), (2, 4), (4, 5)])
        segments = split_segments(scenario, circuits)
        assert [s.index for s in segments] == [0, 1, 2]
        e0 = u0 = 0
        for segment, block in zip(segments, blocks):
            assert segment.extenders == tuple(
                range(e0, e0 + block.n_extenders))
            assert segment.users == tuple(
                range(u0, u0 + block.n_users))
            np.testing.assert_array_equal(
                segment.scenario.wifi_rates, block.wifi_rates)
            np.testing.assert_array_equal(
                segment.scenario.plc_rates, block.plc_rates)
            e0 += block.n_extenders
            u0 += block.n_users

    def test_unreachable_user_belongs_to_no_segment(self):
        scenario, _, circuits = block_scenario(5, [(2, 3), (2, 3)])
        wifi = scenario.wifi_rates.copy()
        wifi[1, :] = 0.0  # user 1 hears nothing
        deaf = Scenario(wifi_rates=wifi, plc_rates=scenario.plc_rates)
        segments = split_segments(deaf, circuits)
        assert all(1 not in s.users for s in segments)
        reference = solve_segments_reference(deaf, circuits)
        assert reference[1] == UNASSIGNED

    def test_empty_segment_has_no_users(self):
        # An extender on its own circuit that no user hears: a
        # segment with extenders but zero users (the quarantine-mask
        # shape the service must survive).
        scenario = Scenario(
            wifi_rates=np.array([[50.0, 0.0], [40.0, 0.0]]),
            plc_rates=np.array([100.0, 100.0]))
        segments = split_segments(scenario, ["a", "b"])
        assert [s.users for s in segments] == [(0, 1), ()]
        assert segments[1].scenario.n_users == 0


class TestScatterAssignment:
    def test_roundtrip_parent_indices(self):
        scenario, _, circuits = block_scenario(6, [(3, 5), (2, 4)])
        segments = split_segments(scenario, circuits)
        locals_ = [np.zeros(len(s.users), dtype=int)
                   for s in segments]
        locals_[1][:] = 1
        full = scatter_assignment(scenario.n_users, segments, locals_)
        assert full[:5].tolist() == [0] * 5   # block 0, extender 0
        assert full[5:].tolist() == [4] * 4   # block 1, local 1 -> 4

    def test_unassigned_preserved(self):
        scenario, _, circuits = block_scenario(7, [(2, 3)])
        segments = split_segments(scenario, circuits)
        local = np.array([0, UNASSIGNED, 1])
        full = scatter_assignment(3, segments, [local])
        assert full.tolist() == [0, UNASSIGNED, 1]

    def test_length_mismatches_rejected(self):
        scenario, _, circuits = block_scenario(8, [(2, 3)])
        segments = split_segments(scenario, circuits)
        with pytest.raises(ValueError, match="assignment vectors"):
            scatter_assignment(3, segments, [])
        with pytest.raises(ValueError, match="covers"):
            scatter_assignment(3, segments, [np.zeros(2, dtype=int)])


class TestShardEquivalence:
    """The contract: per-shard solves concatenated are bit-identical
    to the whole-building reference when segments share no extender."""

    @pytest.mark.parametrize("plc_mode", sorted(PLC_MODES))
    def test_single_segment_degenerates_to_solve_wolt(self, plc_mode):
        rng = np.random.default_rng(11)
        scenario = enterprise_floor(4, 9, rng)
        reference = solve_segments_reference(scenario,
                                             plc_mode=plc_mode)
        direct = solve_wolt(scenario, plc_mode=plc_mode).assignment
        np.testing.assert_array_equal(reference, direct)

    @pytest.mark.parametrize("plc_mode", sorted(PLC_MODES))
    def test_shards_concatenated_equal_block_solves(self, plc_mode):
        scenario, blocks, circuits = block_scenario(
            12, [(3, 6), (2, 5), (3, 4)])
        reference = solve_segments_reference(scenario, circuits,
                                             plc_mode=plc_mode)
        u0 = e0 = 0
        for block in blocks:
            direct = solve_wolt(block, plc_mode=plc_mode).assignment
            np.testing.assert_array_equal(
                reference[u0:u0 + block.n_users] - e0, direct)
            u0 += block.n_users
            e0 += block.n_extenders

    def test_merged_scenario_models_a_different_medium(self):
        # Solving the composite as ONE scenario shares a single PLC
        # medium across both blocks — strictly less capacity than two
        # independent media, so the reference (own medium per segment)
        # scores at least as high.
        scenario, _, circuits = block_scenario(13, [(3, 7), (3, 7)])
        sharded = solve_segments_reference(scenario, circuits)
        merged = solve_wolt(scenario).assignment
        sharded_mbps = evaluate(scenario, sharded).aggregate
        merged_mbps = evaluate(scenario, merged).aggregate
        # Same evaluator (one shared medium) can rank them either
        # way; the point is the *segment-local* scores: each segment
        # solved alone must match its own block optimum, which
        # test_shards_concatenated_equal_block_solves pins.  Here we
        # only require both to be valid, complete assignments.
        assert sharded_mbps > 0 and merged_mbps > 0
        assert (sharded != UNASSIGNED).all()
        assert (merged != UNASSIGNED).all()


class TestSegmentDataclass:
    def test_segments_are_frozen(self):
        scenario, _, circuits = block_scenario(14, [(2, 3)])
        segment = split_segments(scenario, circuits)[0]
        assert isinstance(segment, Segment)
        with pytest.raises(AttributeError):
            segment.index = 5
