"""Tests for the YAML fleet-spec schema: parsing, validation,
generate-block expansion, and topology determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet.spec import (BuildingSpec, FleetSpec, HealthSettings,
                              TelemetryModel, build_building_scenario,
                              load_fleet_spec, parse_fleet_spec)

FULL_SPEC = """
fleet:
  name: campus
  seed: 9
  plc_mode: active
buildings:
  - name: hq
    extenders: 4
    users: 8
    circuits: [a, a, b, b]
generate:
  - prefix: b
    count: 12
    extenders: 3
    users: 6
telemetry:
  wifi_jitter: 0.02
  plc_jitter: 0.05
  dropout: 0.01
health:
  flap_band: 0.4
  flap_strikes: 3
  probation_epochs: 5
"""


class TestParsing:
    def test_full_spec_round_trips(self):
        spec = parse_fleet_spec(FULL_SPEC)
        assert spec.name == "campus"
        assert spec.seed == 9
        assert spec.plc_mode == "active"
        assert spec.n_buildings == 13
        assert spec.n_users == 8 + 12 * 6
        assert spec.buildings[0] == BuildingSpec(
            name="hq", n_extenders=4, n_users=8,
            circuits=("a", "a", "b", "b"))
        assert spec.telemetry == TelemetryModel(
            wifi_jitter=0.02, plc_jitter=0.05, dropout=0.01)
        assert spec.health == HealthSettings(
            flap_band=0.4, flap_strikes=3, probation_epochs=5)

    def test_generate_names_are_zero_padded(self):
        spec = parse_fleet_spec(FULL_SPEC)
        generated = [b.name for b in spec.buildings[1:]]
        assert generated[0] == "b00"
        assert generated[-1] == "b11"
        assert len(set(generated)) == 12

    def test_defaults(self):
        spec = parse_fleet_spec(
            "buildings:\n  - {name: x, extenders: 2, users: 3}\n")
        assert spec.name == "fleet"
        assert spec.seed == 0
        assert spec.plc_mode == "redistribute"
        assert spec.telemetry == TelemetryModel()
        assert spec.health == HealthSettings()
        assert spec.buildings[0].circuits is None

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "fleet.yaml"
        path.write_text(FULL_SPEC, encoding="utf-8")
        assert load_fleet_spec(path) == parse_fleet_spec(FULL_SPEC)

    def test_params_echo_is_json_stable(self):
        spec = parse_fleet_spec(FULL_SPEC)
        import json
        assert (json.loads(json.dumps(spec.params()))
                == spec.params())


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_fleet_spec("bogus: 1\n")

    def test_unknown_building_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_fleet_spec(
                "buildings:\n"
                "  - {name: x, extenders: 2, users: 3, floor: 4}\n")

    def test_bad_plc_mode_rejected(self):
        with pytest.raises(ValueError, match="plc_mode"):
            parse_fleet_spec(
                "fleet: {plc_mode: turbo}\n"
                "buildings:\n  - {name: x, extenders: 2, users: 3}\n")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one building"):
            parse_fleet_spec("fleet: {name: empty}\n")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_fleet_spec(
                "buildings:\n"
                "  - {name: x, extenders: 2, users: 3}\n"
                "  - {name: x, extenders: 2, users: 3}\n")

    def test_bool_is_not_an_integer(self):
        # isinstance(True, int) is True in Python, so without the
        # explicit bool reject a YAML `extenders: true` parses as 1.
        with pytest.raises(ValueError, match="must be an integer"):
            parse_fleet_spec(
                "buildings:\n"
                "  - {name: x, extenders: true, users: 3}\n")

    def test_bool_is_not_a_seed(self):
        with pytest.raises(ValueError, match="must be an integer"):
            parse_fleet_spec(
                "fleet: {name: f, seed: true}\n"
                "buildings:\n"
                "  - {name: x, extenders: 2, users: 3}\n")

    def test_bool_is_not_a_float(self):
        # float(True) is silently 1.0 — `wifi_jitter: true` would be
        # a 100% jitter; every float knob must reject YAML booleans.
        for block in ("telemetry: {wifi_jitter: true}",
                      "telemetry: {plc_jitter: yes}",
                      "telemetry: {dropout: true}",
                      "health: {flap_band: true}",
                      "health: {shard_timeout_s: true}",
                      "chaos: {level: true}",
                      "chaos: {blackout_prob: true}"):
            with pytest.raises(ValueError, match="must be a number"):
                parse_fleet_spec(
                    "buildings:\n"
                    "  - {name: x, extenders: 2, users: 3}\n"
                    + block + "\n")

    def test_non_numeric_float_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            parse_fleet_spec(
                "buildings:\n"
                "  - {name: x, extenders: 2, users: 3}\n"
                "telemetry: {dropout: lots}\n")

    def test_missing_required_key(self):
        with pytest.raises(ValueError, match="missing required"):
            parse_fleet_spec("buildings:\n  - {name: x, users: 3}\n")

    def test_circuit_count_must_match_extenders(self):
        with pytest.raises(ValueError, match="circuit"):
            BuildingSpec(name="x", n_extenders=3, n_users=2,
                         circuits=("a",))

    def test_dropout_must_be_probability(self):
        with pytest.raises(ValueError, match="probability"):
            TelemetryModel(dropout=1.5)

    def test_generate_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            parse_fleet_spec(
                "generate:\n"
                "  - {prefix: b, count: 0, extenders: 2, users: 3}\n")

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            parse_fleet_spec("- just\n- a\n- list\n")


class TestTopologyDeterminism:
    def test_scenario_is_pure_in_spec(self):
        spec = parse_fleet_spec(FULL_SPEC)
        a = build_building_scenario(spec, 3)
        b = build_building_scenario(spec, 3)
        np.testing.assert_array_equal(a.wifi_rates, b.wifi_rates)
        np.testing.assert_array_equal(a.plc_rates, b.plc_rates)

    def test_other_buildings_do_not_shift_the_stream(self):
        # Dropping buildings after index 1 must not change building 1:
        # topology is seeded per-building, not sequentially.
        spec = parse_fleet_spec(FULL_SPEC)
        trimmed = FleetSpec(name=spec.name, seed=spec.seed,
                            plc_mode=spec.plc_mode,
                            buildings=spec.buildings[:2],
                            telemetry=spec.telemetry,
                            health=spec.health)
        full = build_building_scenario(spec, 1)
        cut = build_building_scenario(trimmed, 1)
        np.testing.assert_array_equal(full.wifi_rates, cut.wifi_rates)

    def test_seed_changes_the_floor(self):
        spec = parse_fleet_spec(FULL_SPEC)
        other = FleetSpec(name=spec.name, seed=spec.seed + 1,
                          plc_mode=spec.plc_mode,
                          buildings=spec.buildings,
                          telemetry=spec.telemetry, health=spec.health)
        assert not np.array_equal(
            build_building_scenario(spec, 0).wifi_rates,
            build_building_scenario(other, 0).wifi_rates)


class TestHealthKnobs:
    def test_new_health_keys_parse(self):
        spec = parse_fleet_spec(
            "buildings:\n  - {name: x, extenders: 2, users: 3}\n"
            "health:\n"
            "  shard_timeout_s: 45.0\n"
            "  retry_budget: 2\n"
            "  breaker_strikes: 4\n"
            "  breaker_probation_epochs: 3\n")
        assert spec.health.shard_timeout_s == 45.0
        assert spec.health.retry_budget == 2
        assert spec.health.breaker_strikes == 4
        assert spec.health.breaker_probation_epochs == 3

    def test_shard_timeout_defaults_to_none(self):
        spec = parse_fleet_spec(
            "buildings:\n  - {name: x, extenders: 2, users: 3}\n")
        assert spec.health.shard_timeout_s is None
        assert spec.health.retry_budget == 1

    @pytest.mark.parametrize("line,match", [
        ("shard_timeout_s: 0", "shard_timeout_s"),
        ("shard_timeout_s: -3", "shard_timeout_s"),
        ("retry_budget: -1", "retry_budget"),
        ("breaker_strikes: 0", "breaker_strikes"),
        ("breaker_probation_epochs: 0", "breaker_probation_epochs"),
    ])
    def test_bad_health_knobs_rejected(self, line, match):
        with pytest.raises(ValueError, match=match):
            parse_fleet_spec(
                "buildings:\n  - {name: x, extenders: 2, users: 3}\n"
                f"health: {{{line}}}\n")

    def test_breaker_knobs_are_fingerprinted(self):
        base = parse_fleet_spec(
            "buildings:\n  - {name: x, extenders: 2, users: 3}\n")
        params = base.params()
        assert params["health"]["breaker_strikes"] == 3
        assert params["health"]["breaker_probation_epochs"] == 2
        # Operational knobs stay out of the experiment identity.
        assert "shard_timeout_s" not in params["health"]
        assert "retry_budget" not in params["health"]


class TestChaosBlock:
    BASE = "buildings:\n  - {name: x, extenders: 2, users: 3}\n"

    def test_absent_block_means_no_model(self):
        assert parse_fleet_spec(self.BASE).chaos is None

    def test_level_shorthand(self):
        spec = parse_fleet_spec(
            self.BASE + "chaos: {level: 0.6, until_epoch: 5}\n")
        assert spec.chaos is not None
        assert spec.chaos.blackout_prob == pytest.approx(0.15)
        assert spec.chaos.crash_prob == pytest.approx(0.2)
        assert spec.chaos.hang_prob == pytest.approx(0.1)
        assert spec.chaos.until_epoch == 5

    def test_explicit_rates(self):
        spec = parse_fleet_spec(
            self.BASE + "chaos:\n"
            "  blackout_prob: 0.1\n"
            "  crash_prob: 0.2\n"
            "  crash_attempts: 3\n"
            "  hang_prob: 0.05\n"
            "  hang_s: 30.0\n")
        assert spec.chaos is not None
        assert spec.chaos.crash_attempts == 3
        assert spec.chaos.hang_s == 30.0
        assert spec.chaos.until_epoch is None

    def test_level_mixed_with_rates_rejected(self):
        with pytest.raises(ValueError, match="shorthand"):
            parse_fleet_spec(
                self.BASE + "chaos: {level: 0.5, crash_prob: 0.1}\n")

    def test_unknown_chaos_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_fleet_spec(self.BASE + "chaos: {intensity: 0.5}\n")

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            parse_fleet_spec(self.BASE + "chaos: {crash_prob: 1.5}\n")

    def test_nontrivial_chaos_reaches_params(self):
        stormy = parse_fleet_spec(
            self.BASE + "chaos: {crash_prob: 0.2}\n")
        assert stormy.params()["chaos"]["crash_prob"] == 0.2
        # An all-zero model is identical to no model at all.
        calm = parse_fleet_spec(
            self.BASE + "chaos: {blackout_prob: 0.0}\n")
        assert "chaos" not in calm.params()
        assert calm.params() == parse_fleet_spec(self.BASE).params()
