"""Tests for the decision guard: invariants, repair, bit-identity.

The contracts under test (docs/ROBUSTNESS.md, "Self-healing control
loop"):

* repair is a **no-op** on violation-free assignments (bit-identical);
* guarded solvers return **bit-identical** decisions to their
  unguarded twins on clean seed scenarios;
* repair is **idempotent** — repairing a repaired assignment changes
  nothing;
* repair output is **never invalid** — every surviving directive
  targets a reachable, within-capacity extender, and only genuinely
  unattachable users are left UNASSIGNED.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (greedy_assignment, random_assignment,
                                  rssi_assignment,
                                  selfish_greedy_assignment)
from repro.core.bnb import branch_and_bound_optimal
from repro.core.guard import DecisionGuard, GuardError
from repro.core.phase1 import phase1_utilities, solve_phase1
from repro.core.problem import MIN_USABLE_RATE, UNASSIGNED, Scenario
from repro.core.wolt import solve_wolt

from .conftest import random_scenario


def corrupt(assignment: np.ndarray, rng: np.random.Generator,
            n_extenders: int) -> np.ndarray:
    """Randomly break an assignment in every repairable way."""
    bad = assignment.copy()
    n = bad.size
    bad[rng.integers(n)] = n_extenders + 3          # out of range
    bad[rng.integers(n)] = -7                       # negative garbage
    bad[rng.integers(n)] = UNASSIGNED               # detached user
    return bad


def assert_valid(scenario: Scenario, assignment: np.ndarray) -> None:
    """The post-repair validity contract."""
    counts = np.zeros(scenario.n_extenders, dtype=int)
    for user in range(scenario.n_users):
        j = assignment[user]
        if j == UNASSIGNED:
            # Only genuinely unattachable users may be dropped.
            assert scenario.reachable(user).size == 0
            continue
        assert 0 <= j < scenario.n_extenders
        assert scenario.wifi_rates[user, j] > MIN_USABLE_RATE
        counts[j] += 1
    if scenario.capacities is not None:
        assert np.all(counts <= scenario.capacities)


class TestRepairAssignment:
    def test_noop_on_clean(self, rng):
        sc = random_scenario(rng, 12, 4)
        clean = rssi_assignment(sc)
        guard = DecisionGuard()
        repaired, report = guard.repair_assignment(sc, clean)
        assert np.array_equal(repaired, clean)
        assert report.clean
        assert report.repaired_users == ()

    def test_repairs_all_violation_kinds(self, rng):
        sc = random_scenario(rng, 12, 4)
        bad = corrupt(rssi_assignment(sc), rng, sc.n_extenders)
        guard = DecisionGuard()
        repaired, report = guard.repair_assignment(sc, bad)
        assert not report.clean
        assert {"out-of-range-extender",
                "unassigned-user"} <= set(report.codes())
        assert_valid(sc, repaired)
        assert not np.any(repaired == UNASSIGNED)  # all reattachable

    def test_unreachable_directive_dropped_and_reattached(self, rng):
        sc = random_scenario(rng, 8, 3, reachable_prob=0.6)
        guard = DecisionGuard()
        bad = rssi_assignment(sc)
        # Force a user onto an extender it cannot hear, if one exists.
        user = next((u for u in range(8)
                     if np.any(sc.wifi_rates[u] <= MIN_USABLE_RATE)),
                    None)
        if user is None:
            pytest.skip("every user hears every extender")
        dead_j = int(np.argmin(sc.wifi_rates[user]))
        bad[user] = dead_j
        repaired, report = guard.repair_assignment(sc, bad)
        assert "unreachable-extender" in report.codes()
        assert repaired[user] != dead_j
        assert_valid(sc, repaired)

    def test_over_capacity_evicts_weakest(self, rng):
        sc = random_scenario(rng, 6, 3, capacities=True)
        caps = np.array([1, 6, 6])
        sc = Scenario(wifi_rates=sc.wifi_rates, plc_rates=sc.plc_rates,
                      capacities=caps)
        bad = np.zeros(6, dtype=int)  # everyone piled on extender 0
        guard = DecisionGuard()
        repaired, report = guard.repair_assignment(sc, bad)
        assert "over-capacity" in report.codes()
        survivor = np.flatnonzero(repaired == 0)
        assert survivor.size == 1
        # The strongest link keeps its place.
        assert survivor[0] == int(np.argmax(sc.wifi_rates[:, 0]))
        assert_valid(sc, repaired)

    def test_repair_idempotent(self, rng):
        for trial in range(20):
            sc = random_scenario(rng, 10, 4, reachable_prob=0.7,
                                 capacities=bool(trial % 2))
            bad = corrupt(rssi_assignment(sc), rng, sc.n_extenders)
            guard = DecisionGuard()
            once, _ = guard.repair_assignment(sc, bad)
            twice, second = guard.repair_assignment(sc, once,
                                                    require_complete=False)
            assert np.array_equal(once, twice)
            assert second.repaired_users == ()
            assert_valid(sc, once)

    def test_incomplete_tolerated_without_require_complete(self, rng):
        sc = random_scenario(rng, 5, 2)
        partial = np.full(5, UNASSIGNED, dtype=int)
        guard = DecisionGuard()
        repaired, report = guard.repair_assignment(
            sc, partial, require_complete=False)
        assert np.array_equal(repaired, partial)
        assert report.clean

    def test_wrong_length_raises(self, rng):
        sc = random_scenario(rng, 5, 2)
        with pytest.raises(GuardError):
            DecisionGuard().repair_assignment(sc, [0, 0, 0])

    def test_strict_mode_raises_instead_of_repairing(self, rng):
        sc = random_scenario(rng, 6, 3)
        bad = corrupt(rssi_assignment(sc), rng, sc.n_extenders)
        with pytest.raises(GuardError):
            DecisionGuard(strict=True).repair_assignment(sc, bad)

    def test_counters_accumulate(self, rng):
        sc = random_scenario(rng, 8, 3)
        guard = DecisionGuard()
        guard.repair_assignment(sc, rssi_assignment(sc))
        bad = corrupt(rssi_assignment(sc), rng, sc.n_extenders)
        guard.repair_assignment(sc, bad)
        assert guard.checks == 2
        assert guard.violation_count > 0
        assert guard.repairs > 0
        assert guard.last_report is guard.reports[-1]


class TestCheckAssignment:
    def test_detect_matches_repair_criteria(self, rng):
        sc = random_scenario(rng, 10, 4, capacities=True)
        bad = corrupt(rssi_assignment(sc), rng, sc.n_extenders)
        guard = DecisionGuard()
        detected = guard.check_assignment(sc, bad)
        _, repair_report = guard.repair_assignment(sc, bad)
        assert set(detected.codes()) <= \
            set(repair_report.codes()) | {"unassigned-user"}
        assert not detected.clean

    def test_clean_assignment_reports_clean(self, rng):
        sc = random_scenario(rng, 10, 4)
        guard = DecisionGuard()
        assert guard.check_assignment(sc, rssi_assignment(sc)).clean


class TestSanitizeRates:
    def test_clean_rates_pass_through(self):
        guard = DecisionGuard()
        rates = np.array([10.0, 0.0, 33.5])
        clean, report = guard.sanitize_rates(rates)
        assert np.array_equal(clean, rates)
        assert report.clean

    def test_nonfinite_replaced_with_fallback(self):
        guard = DecisionGuard()
        rates = np.array([np.nan, 20.0, np.inf, -5.0])
        fallback = np.array([11.0, 99.0, np.nan, 4.0])
        clean, report = guard.sanitize_rates(rates, fallback=fallback)
        # nan -> fallback; inf -> non-finite fallback -> 0; -5 -> 0.
        assert clean.tolist() == [11.0, 20.0, 0.0, 0.0]
        assert report.sanitized_entries == 3
        assert "nonfinite-telemetry" in report.codes()
        assert guard.sanitized_entries == 3

    def test_nonfinite_without_fallback_zeroed(self):
        clean, _ = DecisionGuard().sanitize_rates([np.nan, 7.0])
        assert clean.tolist() == [0.0, 7.0]

    def test_fallback_shape_mismatch(self):
        with pytest.raises(GuardError):
            DecisionGuard().sanitize_rates([np.nan],
                                           fallback=np.ones(3))


class TestPhase1Guard:
    def test_clean_artifact_same_object(self, rng):
        sc = random_scenario(rng, 10, 4)
        result = solve_phase1(sc)
        guard = DecisionGuard()
        fixed, report = guard.repair_phase1(sc, result)
        assert fixed is result
        assert report.clean

    def test_duplicate_anchor_repaired(self, rng):
        sc = random_scenario(rng, 6, 3)
        result = solve_phase1(sc)
        assign = result.assignment.copy()
        anchors = np.flatnonzero(assign != UNASSIGNED)
        assert anchors.size >= 2
        # Pile two anchors on one extender.
        assign[anchors[1]] = assign[anchors[0]]
        from repro.core.phase1 import Phase1Result
        broken = Phase1Result(
            assignment=assign,
            anchored_users=np.sort(np.flatnonzero(
                assign != UNASSIGNED)),
            utilities=result.utilities, objective=result.objective,
            unmatched_extenders=result.unmatched_extenders)
        guard = DecisionGuard()
        fixed, report = guard.repair_phase1(sc, broken)
        assert "duplicate-anchor" in report.codes()
        occupancy = np.bincount(
            fixed.assignment[fixed.assignment != UNASSIGNED],
            minlength=sc.n_extenders)
        assert np.all(occupancy <= 1)

    def test_false_unmatched_claim_detected(self, rng):
        sc = random_scenario(rng, 6, 3)
        result = solve_phase1(sc)
        # Release one anchor and falsely declare its extender unmatched.
        assign = result.assignment.copy()
        anchors = np.flatnonzero(assign != UNASSIGNED)
        victim = int(anchors[0])
        extender = int(assign[victim])
        assign[victim] = UNASSIGNED
        from repro.core.phase1 import Phase1Result
        broken = Phase1Result(
            assignment=assign,
            anchored_users=np.sort(np.flatnonzero(
                assign != UNASSIGNED)),
            utilities=result.utilities, objective=0.0,
            unmatched_extenders=np.array([extender]))
        guard = DecisionGuard()
        fixed, report = guard.repair_phase1(sc, broken)
        assert "uncovered-extender" in report.codes()
        assert np.any(fixed.assignment == extender)
        assert extender not in fixed.unmatched_extenders.tolist()


class TestCleanInputBitIdentity:
    """The tentpole contract: guard=None vs DecisionGuard() on clean
    seed scenarios must be byte-for-byte indistinguishable."""

    @pytest.mark.parametrize("n_users,n_extenders", [(6, 2), (12, 4),
                                                     (24, 8)])
    def test_solve_wolt(self, rng, n_users, n_extenders):
        sc = random_scenario(rng, n_users, n_extenders)
        guard = DecisionGuard()
        plain = solve_wolt(sc)
        guarded = solve_wolt(sc, guard=guard)
        assert np.array_equal(plain.assignment, guarded.assignment)
        assert plain.aggregate_throughput == \
            guarded.aggregate_throughput
        assert guard.violation_count == 0

    def test_solve_wolt_sparse_reachability(self, rng):
        sc = random_scenario(rng, 15, 5, reachable_prob=0.5)
        guard = DecisionGuard()
        plain = solve_wolt(sc)
        guarded = solve_wolt(sc, guard=guard)
        assert np.array_equal(plain.assignment, guarded.assignment)

    def test_phase1(self, rng):
        sc = random_scenario(rng, 10, 4)
        utilities = phase1_utilities(sc)
        plain = solve_phase1(sc, utilities)
        guarded = solve_phase1(sc, utilities,
                               guard=DecisionGuard())
        assert np.array_equal(plain.assignment, guarded.assignment)
        assert plain.objective == guarded.objective

    def test_baselines(self, rng):
        sc = random_scenario(rng, 12, 4, capacities=True)
        for fn in (rssi_assignment, greedy_assignment,
                   selfish_greedy_assignment):
            assert np.array_equal(fn(sc), fn(sc,
                                             guard=DecisionGuard()))
        plain = random_assignment(sc,
                                  rng=np.random.default_rng(7))
        guarded = random_assignment(sc,
                                    rng=np.random.default_rng(7),
                                    guard=DecisionGuard())
        assert np.array_equal(plain, guarded)

    def test_bnb(self, rng):
        sc = random_scenario(rng, 7, 3)
        plain = branch_and_bound_optimal(sc)
        guarded = branch_and_bound_optimal(sc, guard=DecisionGuard())
        assert np.array_equal(plain.assignment, guarded.assignment)
        assert plain.aggregate_throughput == \
            guarded.aggregate_throughput


class TestGuardedSolversOnDirtyInputs:
    """Guarded solvers must degrade gracefully where unguarded raise."""

    def _deaf_user_scenario(self, rng):
        sc = random_scenario(rng, 8, 3)
        wifi = sc.wifi_rates.copy()
        wifi[2, :] = 0.0  # user 2 hears nothing
        return Scenario(wifi_rates=wifi, plc_rates=sc.plc_rates)

    def test_solve_wolt_drops_deaf_user(self, rng):
        sc = self._deaf_user_scenario(rng)
        guard = DecisionGuard()
        result = solve_wolt(sc, guard=guard)
        assert result.assignment[2] == UNASSIGNED
        assert_valid(sc, result.assignment)
        assert result.aggregate_throughput > 0

    def test_baselines_drop_deaf_user(self, rng):
        sc = self._deaf_user_scenario(rng)
        for fn in (rssi_assignment, greedy_assignment,
                   selfish_greedy_assignment, random_assignment):
            with pytest.raises(ValueError):
                fn(sc)
            out = fn(sc, guard=DecisionGuard())
            assert out[2] == UNASSIGNED
            assert_valid(sc, out)

    def test_bnb_certifies_reachable_subset(self, rng):
        sc = self._deaf_user_scenario(rng)
        with pytest.raises(ValueError):
            branch_and_bound_optimal(sc)
        guard = DecisionGuard()
        result = branch_and_bound_optimal(sc, guard=guard)
        assert result.assignment[2] == UNASSIGNED
        assert_valid(sc, result.assignment)
        # The subset optimum must dominate any heuristic on the
        # reachable users.
        heuristic = solve_wolt(sc, guard=DecisionGuard())
        assert result.aggregate_throughput >= \
            heuristic.aggregate_throughput - 1e-9
