"""Tests for the HealthMonitor quarantine state machine and its
integration with the CentralController (stale-report TTL, telemetry
sanitation, quarantine masking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import CentralController, ScanReport
from repro.core.guard import DecisionGuard
from repro.core.health import HealthMonitor
from repro.core.problem import UNASSIGNED

from .conftest import random_scenario


class TestQuarantineTriggers:
    def test_nonfinite_capacity_quarantines(self):
        hm = HealthMonitor(3)
        mask = hm.observe([100.0, np.nan, 100.0])
        assert mask.tolist() == [False, True, False]
        assert hm.events[-1].reason == "nonfinite-capacity"
        assert hm.quarantined_extenders() == (1,)

    def test_zero_capacity_only_suspect_under_traffic(self):
        hm = HealthMonitor(2)
        # Zero with no traffic: an idle link, not a sick one.
        assert not hm.observe([0.0, 50.0],
                              carrying_traffic=[False, False]).any()
        assert hm.observe([0.0, 50.0],
                          carrying_traffic=[True, False])[0]
        assert hm.events[-1].reason == "zero-capacity-under-traffic"

    def test_flapping_needs_consecutive_strikes(self):
        hm = HealthMonitor(2, flap_band=0.5, flap_strikes=2)
        hm.observe([100.0, 100.0])
        hm.observe([10.0, 100.0])   # strike 1 for extender 0
        assert not hm.is_quarantined(0)
        hm.observe([100.0, 100.0])  # strike 2 -> quarantine
        assert hm.is_quarantined(0)
        assert hm.events[-1].reason == "capacity-flapping"
        assert not hm.is_quarantined(1)

    def test_single_swing_is_not_flapping(self):
        hm = HealthMonitor(1, flap_strikes=2)
        hm.observe([100.0])
        hm.observe([10.0])   # one legitimate capacity change
        hm.observe([10.0])   # settles -> counter resets
        hm.observe([10.0])
        assert not hm.is_quarantined(0)

    def test_last_healthy_extender_never_quarantined(self):
        hm = HealthMonitor(2)
        hm.observe([np.nan, 100.0])
        assert hm.quarantined_extenders() == (0,)
        hm.observe([np.nan, np.nan])
        assert hm.quarantined_extenders() == (0,)
        assert hm.events[-1].event == "quarantine-skipped"


class TestProbation:
    def test_readmission_after_clean_streak(self):
        hm = HealthMonitor(2, probation_epochs=2)
        hm.observe([np.nan, 100.0])
        hm.observe([80.0, 100.0])
        assert hm.is_quarantined(0)  # one clean epoch is not enough
        hm.observe([80.0, 100.0])
        assert not hm.is_quarantined(0)
        assert hm.events[-1].event == "readmit"

    def test_suspect_epoch_resets_probation(self):
        hm = HealthMonitor(2, probation_epochs=2)
        hm.observe([np.nan, 100.0])
        hm.observe([80.0, 100.0])
        hm.observe([np.nan, 100.0])  # relapse
        hm.observe([80.0, 100.0])
        assert hm.is_quarantined(0)  # streak restarted
        hm.observe([80.0, 100.0])
        assert not hm.is_quarantined(0)


class TestEffectiveRates:
    def test_last_known_good_fallback(self):
        hm = HealthMonitor(3)
        hm.observe([100.0, 60.0, 40.0])
        rates = hm.effective_rates([np.nan, -5.0, 45.0])
        assert rates.tolist() == [100.0, 60.0, 45.0]

    def test_no_history_falls_to_zero(self):
        hm = HealthMonitor(1)
        assert hm.effective_rates([np.inf]).tolist() == [0.0]

    def test_zero_under_traffic_never_becomes_fallback(self):
        """Regression: a damning observation must not enter _last_good.

        Pre-fix, the zero-capacity-under-traffic reading that
        *quarantined* extender 0 also became its last-known-good value
        (``rates[j] >= 0`` includes 0), so ``effective_rates`` fell
        back to 0.0 and permanently starved the extender even after
        telemetry went garbage-only.
        """
        hm = HealthMonitor(3)
        hm.observe([80.0, 60.0, 40.0])
        # The damning epoch: extender 0 reads zero while carrying
        # traffic — quarantined, and the reading must be distrusted.
        mask = hm.observe([0.0, 60.0, 40.0],
                          carrying_traffic=[True, False, False])
        assert mask.tolist() == [True, False, False]
        rates = hm.effective_rates([np.nan, 60.0, 40.0])
        assert rates.tolist() == [80.0, 60.0, 40.0]

    def test_flapping_strike_never_becomes_fallback(self):
        """A capacity-flapping epoch is suspect, not last-known-good."""
        hm = HealthMonitor(2, flap_band=0.5, flap_strikes=2)
        hm.observe([100.0, 50.0])
        hm.observe([10.0, 50.0])   # strike 1: a single swing is clean
        hm.observe([100.0, 50.0])  # strike 2: quarantined as flapping
        assert hm.is_quarantined(0)
        assert hm.events[-1].reason == "capacity-flapping"
        # The strike-2 reading (judged flapping) must not displace the
        # last clean observation — the strike-1 epoch's 10.0, which the
        # state machine itself deemed a legitimate capacity change.
        assert hm.effective_rates([np.nan, 50.0]).tolist() == [10.0,
                                                               50.0]

    def test_clean_zero_without_traffic_is_good(self):
        """An idle link legitimately reading zero stays trustworthy."""
        hm = HealthMonitor(2)
        hm.observe([0.0, 60.0], carrying_traffic=[False, False])
        assert not hm.quarantined.any()
        assert hm.effective_rates([np.nan, 60.0]).tolist() == [0.0, 60.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(0)
        with pytest.raises(ValueError):
            HealthMonitor(2, flap_band=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(2, probation_epochs=0)
        with pytest.raises(ValueError):
            HealthMonitor(2).observe([1.0])
        with pytest.raises(ValueError):
            HealthMonitor(2).effective_rates([1.0, 2.0, 3.0])


class TestControllerTelemetry:
    """update_plc_telemetry with and without a HealthMonitor."""

    def test_unguarded_rejects_nonfinite(self):
        cc = CentralController([50.0, 60.0])
        with pytest.raises(ValueError):
            cc.update_plc_telemetry([np.nan, 60.0])
        cc.update_plc_telemetry([40.0, 70.0])
        assert cc.plc_rates.tolist() == [40.0, 70.0]

    def test_health_monitor_absorbs_nonfinite(self):
        cc = CentralController([50.0, 60.0], health=HealthMonitor(2))
        cc.update_plc_telemetry([40.0, 70.0])
        cc.update_plc_telemetry([np.nan, 70.0])
        # NaN falls back to last known good; extender quarantined.
        assert cc.plc_rates.tolist() == [40.0, 70.0]
        assert cc.health.is_quarantined(0)

    def test_health_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CentralController([50.0, 60.0], health=HealthMonitor(3))


class TestControllerScanSanitation:
    def test_unguarded_rejects_nan_report(self):
        cc = CentralController([50.0, 60.0])
        with pytest.raises(ValueError):
            cc.receive_scan_report(
                ScanReport(0, np.array([np.nan, 30.0])))

    def test_guarded_sanitizes_with_last_known_good(self):
        cc = CentralController([50.0, 60.0], guard=DecisionGuard())
        cc.receive_scan_report(ScanReport(0, np.array([20.0, 30.0])))
        cc.receive_scan_report(
            ScanReport(0, np.array([np.nan, 35.0])))
        assert cc.stats.sanitized_reports == 1
        # The cached report carries the fallback, not the NaN.
        cached = cc._reports[0].wifi_rates
        assert cached.tolist() == [20.0, 35.0]

    def test_guarded_ignores_fully_poisoned_first_report(self):
        cc = CentralController([50.0, 60.0], guard=DecisionGuard())
        out = cc.receive_scan_report(
            ScanReport(0, np.array([np.nan, np.nan])))
        assert out is None
        assert 0 not in cc.associations


class TestReportTTL:
    def _drive(self, ttl):
        rng = np.random.default_rng(3)
        sc = random_scenario(rng, 6, 3)
        cc = CentralController(sc.plc_rates, guard=DecisionGuard(),
                               report_ttl_epochs=ttl)
        for user in range(sc.n_users):
            cc.receive_scan_report(
                ScanReport(user, sc.wifi_rates[user]))
        return sc, cc

    def test_fresh_reports_all_solved(self):
        _, cc = self._drive(ttl=2)
        cc.reconfigure()
        assert cc.stats.stale_reports == 0

    def test_stale_users_keep_last_association(self):
        sc, cc = self._drive(ttl=1)
        cc.reconfigure()
        placed = dict(cc.associations)
        # Nobody re-reports: after two more epochs every report has
        # expired — the users keep their associations and are counted.
        cc.reconfigure()
        cc.reconfigure()
        assert cc.stats.stale_reports > 0
        assert cc.associations == placed

    def test_rereport_refreshes_ttl(self):
        sc, cc = self._drive(ttl=1)
        cc.reconfigure()
        for user in range(sc.n_users):
            cc.receive_scan_report(
                ScanReport(user, sc.wifi_rates[user]))
        cc.reconfigure()
        assert cc.stats.stale_reports == 0

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            CentralController([50.0], report_ttl_epochs=0)

    def test_no_ttl_keeps_legacy_behaviour(self):
        sc, cc = self._drive(ttl=None)
        for _ in range(5):
            cc.reconfigure()
        assert cc.stats.stale_reports == 0


class TestQuarantineMasking:
    def test_no_user_commanded_onto_quarantined_extender(self):
        rng = np.random.default_rng(11)
        sc = random_scenario(rng, 8, 3)
        health = HealthMonitor(3, probation_epochs=2)
        cc = CentralController(sc.plc_rates, guard=DecisionGuard(),
                               health=health)
        for user in range(sc.n_users):
            cc.receive_scan_report(
                ScanReport(user, sc.wifi_rates[user]))
        cc.reconfigure()
        # Extender 0 starts reporting garbage capacity.
        bad = sc.plc_rates.copy()
        bad[0] = np.nan
        cc.update_plc_telemetry(bad)
        assert health.is_quarantined(0)
        cc.reconfigure()
        assert all(j != 0 for j in cc.associations.values())

    def test_admission_avoids_quarantined_extender(self):
        health = HealthMonitor(2, probation_epochs=2)
        cc = CentralController([50.0, 60.0], guard=DecisionGuard(),
                               health=health)
        cc.update_plc_telemetry([np.nan, 60.0])
        assert health.is_quarantined(0)
        # Extender 0 has the stronger link, but it is quarantined.
        cc.receive_scan_report(ScanReport(0, np.array([90.0, 30.0])))
        assert cc.associations[0] == 1

    def test_readmitted_extender_usable_again(self):
        health = HealthMonitor(2, probation_epochs=2)
        cc = CentralController([50.0, 60.0], guard=DecisionGuard(),
                               health=health)
        cc.update_plc_telemetry([np.nan, 60.0])
        cc.update_plc_telemetry([50.0, 60.0])
        cc.update_plc_telemetry([50.0, 60.0])
        assert not health.is_quarantined(0)
        cc.receive_scan_report(ScanReport(0, np.array([90.0, 30.0])))
        assert cc.associations[0] == 0

    def test_network_report_ignores_quarantine(self):
        """Measurement is physics: a client still parked on a
        quarantined extender must be measurable."""
        health = HealthMonitor(2, probation_epochs=5)
        cc = CentralController([50.0, 60.0], guard=DecisionGuard(),
                               health=health)
        cc.receive_scan_report(ScanReport(0, np.array([90.0, 30.0])))
        assert cc.associations[0] == 0
        cc.update_plc_telemetry([50.0, 60.0])  # seed last-known-good
        cc.update_plc_telemetry([np.nan, 60.0])
        assert health.is_quarantined(0)
        report = cc.network_report()
        assert report.aggregate > 0
