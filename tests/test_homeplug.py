"""Tests for the HomePlug AV2 PHY (tone map / bit loading) model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plc.homeplug import DEFAULT_AV2, Av2Phy


class TestBitLoading:
    def test_zero_snr_loads_zero_bits(self):
        phy = Av2Phy()
        bits = phy.bit_loading(np.full(phy.n_carriers, -20.0))
        assert np.all(bits == 0)

    def test_high_snr_hits_constellation_cap(self):
        phy = Av2Phy()
        bits = phy.bit_loading(np.full(phy.n_carriers, 80.0))
        assert np.all(bits == phy.max_bits_per_carrier)

    def test_wrong_profile_length_rejected(self):
        with pytest.raises(ValueError):
            Av2Phy().bit_loading(np.zeros(10))

    @given(st.floats(min_value=-20.0, max_value=80.0),
           st.floats(min_value=-20.0, max_value=80.0))
    @settings(max_examples=100)
    def test_monotone_in_snr(self, s1, s2):
        phy = Av2Phy(n_carriers=32)
        lo, hi = sorted((s1, s2))
        bits_lo = phy.bit_loading(np.full(32, lo))
        bits_hi = phy.bit_loading(np.full(32, hi))
        assert np.all(bits_hi >= bits_lo)


class TestRates:
    def test_rate_decreases_with_attenuation(self):
        rates = [DEFAULT_AV2.rate_for_attenuation(a)
                 for a in (10.0, 30.0, 50.0, 70.0)]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > rates[-1]

    def test_fig2b_range_covered(self):
        """Some attenuation maps to each end of the measured range."""
        best = DEFAULT_AV2.rate_for_attenuation(0.0)
        assert best >= 160.0
        worst = DEFAULT_AV2.rate_for_attenuation(70.0)
        assert worst <= 60.0

    def test_mac_rate_below_phy_rate(self):
        profile = DEFAULT_AV2.snr_profile(30.0)
        assert (DEFAULT_AV2.mac_rate_mbps(profile)
                < DEFAULT_AV2.phy_rate_mbps(profile))

    def test_dead_link_has_zero_rate(self):
        assert DEFAULT_AV2.rate_for_attenuation(200.0) == 0.0

    def test_negative_attenuation_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_AV2.snr_profile(-1.0)

    @given(st.floats(min_value=0.0, max_value=120.0),
           st.floats(min_value=0.0, max_value=120.0))
    @settings(max_examples=60)
    def test_rate_monotone_non_increasing(self, a1, a2):
        lo, hi = sorted((a1, a2))
        assert (DEFAULT_AV2.rate_for_attenuation(lo)
                >= DEFAULT_AV2.rate_for_attenuation(hi))


class TestSnrProfile:
    def test_frequency_tilt(self):
        profile = DEFAULT_AV2.snr_profile(20.0, selectivity_db=12.0)
        # SNR decreases toward higher carriers (cable loss grows with f).
        assert profile[0] > profile[-1]
        assert profile[0] - profile[-1] == pytest.approx(12.0)

    def test_flat_profile_without_selectivity(self):
        profile = DEFAULT_AV2.snr_profile(20.0, selectivity_db=0.0)
        assert np.allclose(profile, profile[0])


class TestValidation:
    def test_invalid_carriers(self):
        with pytest.raises(ValueError):
            Av2Phy(n_carriers=0)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            Av2Phy(band_start_mhz=30.0, band_end_mhz=1.8)

    def test_invalid_efficiencies(self):
        with pytest.raises(ValueError):
            Av2Phy(fec_efficiency=0.0)
        with pytest.raises(ValueError):
            Av2Phy(mac_efficiency=1.5)

    def test_carrier_grid(self):
        phy = Av2Phy(n_carriers=5, band_start_mhz=2.0, band_end_mhz=10.0)
        freqs = phy.carrier_frequencies_mhz
        assert freqs[0] == 2.0 and freqs[-1] == 10.0
        assert len(freqs) == 5
