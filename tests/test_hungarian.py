"""Tests for the from-scratch rectangular Hungarian solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.hungarian import InfeasibleAssignmentError, solve_assignment


class TestBasics:
    def test_identity_is_optimal(self):
        w = np.eye(3)
        rows, cols = solve_assignment(w, maximize=True)
        assert rows.tolist() == cols.tolist() == [0, 1, 2]

    def test_minimize_orientation(self):
        w = np.array([[1.0, 10.0], [10.0, 1.0]])
        rows, cols = solve_assignment(w, maximize=False)
        assert w[rows, cols].sum() == pytest.approx(2.0)

    def test_maximize_orientation(self):
        w = np.array([[1.0, 10.0], [10.0, 1.0]])
        rows, cols = solve_assignment(w, maximize=True)
        assert w[rows, cols].sum() == pytest.approx(20.0)

    def test_rectangular_tall_matches_all_columns(self):
        w = np.array([[5.0, 1.0], [4.0, 8.0], [9.0, 2.0]])
        rows, cols = solve_assignment(w, maximize=True)
        assert len(rows) == 2
        assert sorted(cols.tolist()) == [0, 1]
        assert len(set(rows.tolist())) == 2
        assert w[rows, cols].sum() == pytest.approx(17.0)  # 9 + 8

    def test_rectangular_wide_matches_all_rows(self):
        w = np.array([[5.0, 1.0, 7.0]])
        rows, cols = solve_assignment(w, maximize=True)
        assert rows.tolist() == [0]
        assert cols.tolist() == [2]

    def test_forbidden_pairs_avoided(self):
        w = np.array([[10.0, -np.inf], [9.0, 8.0]])
        rows, cols = solve_assignment(w, maximize=True)
        pairs = dict(zip(rows.tolist(), cols.tolist()))
        assert pairs[0] == 0
        assert pairs[1] == 1

    def test_infeasible_detected(self):
        w = np.array([[-np.inf, -np.inf], [1.0, 2.0]])
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(w, maximize=True)

    def test_all_forbidden_detected(self):
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(np.full((2, 2), -np.inf), maximize=True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.array([[np.nan]]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.empty((0, 3)))

    def test_single_cell(self):
        rows, cols = solve_assignment(np.array([[3.5]]))
        assert rows.tolist() == [0] and cols.tolist() == [0]


class TestAgainstScipy:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_optimal_value_matches_scipy(self, n, m, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.0, 100.0, size=(n, m))
        rows, cols = solve_assignment(w, maximize=True)
        ref_rows, ref_cols = linear_sum_assignment(w, maximize=True)
        assert w[rows, cols].sum() == pytest.approx(
            w[ref_rows, ref_cols].sum())

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_minimize_matches_scipy(self, n, m, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(-50.0, 50.0, size=(n, m))
        rows, cols = solve_assignment(w, maximize=False)
        ref_rows, ref_cols = linear_sum_assignment(w, maximize=False)
        assert w[rows, cols].sum() == pytest.approx(
            w[ref_rows, ref_cols].sum())

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 2**31 - 1),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_sparse_feasibility_matches_scipy(self, n, m, seed, density):
        """With random forbidden pairs, agree with scipy (or both fail)."""
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.0, 100.0, size=(n, m))
        forbidden = rng.random((n, m)) > density
        w = np.where(forbidden, -np.inf, w)
        scipy_w = np.where(forbidden, -1e12, w)
        ref_rows, ref_cols = linear_sum_assignment(scipy_w, maximize=True)
        ref_feasible = not np.any(forbidden[ref_rows, ref_cols])
        try:
            rows, cols = solve_assignment(w, maximize=True)
        except InfeasibleAssignmentError:
            assert not ref_feasible
        else:
            assert ref_feasible
            assert w[rows, cols].sum() == pytest.approx(
                scipy_w[ref_rows, ref_cols].sum())

    @given(st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_matching_is_a_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(n, n))
        rows, cols = solve_assignment(w)
        assert sorted(rows.tolist()) == list(range(n))
        assert sorted(cols.tolist()) == list(range(n))
