"""Property tests for the from-scratch rectangular assignment solver.

Randomized cross-checks of :func:`repro.core.hungarian.solve_assignment`
against :func:`scipy.optimize.linear_sum_assignment` on rectangular
matrices with forbidden pairs, plus explicit guarantees that a
fully-forbidden row raises :class:`InfeasibleAssignmentError` instead of
silently matching the sentinel "big" cost.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.hungarian import InfeasibleAssignmentError, solve_assignment


def _random_instance(seed: int, n_rows: int, n_cols: int,
                     forbidden_prob: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-50.0, 150.0, size=(n_rows, n_cols))
    forbidden = rng.random((n_rows, n_cols)) < forbidden_prob
    return np.where(forbidden, -np.inf, weights)


def _scipy_reference(weights: np.ndarray):
    """scipy's verdict: (feasible, total utility of an optimal matching)."""
    try:
        rows, cols = linear_sum_assignment(weights, maximize=True)
    except ValueError:
        return False, None
    if np.any(np.isneginf(weights[rows, cols])):
        return False, None
    return True, float(weights[rows, cols].sum())


class TestScipyDifferential:
    @given(st.integers(1, 7), st.integers(1, 7),
           st.sampled_from([0.0, 0.2, 0.4, 0.6]),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=120, deadline=None)
    def test_same_verdict_and_value(self, n_rows, n_cols, forbidden_prob,
                                    seed):
        weights = _random_instance(seed, n_rows, n_cols, forbidden_prob)
        feasible, best = _scipy_reference(weights)
        if not feasible:
            with pytest.raises(InfeasibleAssignmentError):
                solve_assignment(weights, maximize=True)
            return
        rows, cols = solve_assignment(weights, maximize=True)
        assert rows.size == cols.size == min(n_rows, n_cols)
        assert len(set(rows.tolist())) == rows.size
        assert len(set(cols.tolist())) == cols.size
        assert not np.any(np.isneginf(weights[rows, cols]))
        assert float(weights[rows, cols].sum()) == pytest.approx(best)

    @given(st.integers(1, 6), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_minimize_orientation(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.0, 100.0, size=(n_rows, n_cols))
        rows, cols = solve_assignment(costs, maximize=False)
        ref_rows, ref_cols = linear_sum_assignment(costs)
        assert float(costs[rows, cols].sum()) == pytest.approx(
            float(costs[ref_rows, ref_cols].sum()))


class TestFullyForbiddenRows:
    def test_square_matrix_with_dead_row_is_infeasible(self):
        weights = np.array([[10.0, 20.0, 30.0],
                            [-np.inf, -np.inf, -np.inf],
                            [5.0, 15.0, 25.0]])
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(weights, maximize=True)

    def test_wide_matrix_with_dead_row_is_infeasible(self):
        # Fewer rows than columns: every row must still be matched.
        weights = np.array([[-np.inf, -np.inf, -np.inf, -np.inf],
                            [1.0, 2.0, 3.0, 4.0]])
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(weights, maximize=True)

    def test_tall_matrix_skips_dead_row(self):
        # More rows than columns: a dead row can simply stay unmatched.
        weights = np.array([[10.0, 1.0],
                            [-np.inf, -np.inf],
                            [2.0, 20.0]])
        rows, cols = solve_assignment(weights, maximize=True)
        assert 1 not in rows.tolist()
        assert float(weights[rows, cols].sum()) == pytest.approx(30.0)

    def test_all_forbidden_matrix_is_infeasible(self):
        weights = np.full((2, 2), -np.inf)
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(weights, maximize=True)

    def test_minimize_dead_row_is_infeasible(self):
        costs = np.array([[np.inf, np.inf],
                          [1.0, 2.0]])
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(costs, maximize=False)

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_never_matches_sentinel_cost(self, n, seed):
        """A forbidden pair never leaks into the matching via `big`."""
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.0, 100.0, size=(n, n))
        dead = int(rng.integers(n))
        weights[dead, :] = -np.inf
        with pytest.raises(InfeasibleAssignmentError):
            solve_assignment(weights, maximize=True)
