"""End-to-end integration tests across subsystem boundaries.

Each test exercises a realistic pipeline: building synthesis → rate
derivation → association → engine scoring → control-plane accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (CentralController, IncrementalWolt, Scenario,
                   enterprise_floor, evaluate, greedy_assignment,
                   jain_fairness, rssi_assignment, solve_wolt)
from repro.core.bounds import certify
from repro.core.controller import ScanReport
from repro.plc.channel import random_building
from repro.plc.mac import Ieee1901CsmaSimulator
from repro.sim.dynamics import OnlineSimulation
from repro.sim.runner import sample_floor_plan
from repro.sim.traffic import evaluate_with_demands
from repro.wifi.mac import DcfSimulator
from repro.wifi.phy import WifiPhy


class TestBuildingToAssociationPipeline:
    def test_full_pipeline(self):
        """Wiring graph -> capacities -> floor -> WOLT -> certificate."""
        rng = np.random.default_rng(42)
        building = random_building(20, rng)
        scenario = enterprise_floor(10, 25, rng, building=building)
        result = solve_wolt(scenario, plc_mode="fixed")
        cert = certify(scenario, result.assignment, plc_mode="fixed")
        assert cert.gap_fraction < 0.5
        assert result.report.plc_time_shares.sum() <= 1.0 + 1e-9

    def test_every_policy_agrees_on_problem_shape(self):
        rng = np.random.default_rng(7)
        scenario = enterprise_floor(6, 18, rng)
        wolt = solve_wolt(scenario).assignment
        greedy = greedy_assignment(scenario, rng.permutation(18))
        rssi = rssi_assignment(scenario)
        for assignment in (wolt, greedy, rssi):
            report = evaluate(scenario, assignment, require_complete=True)
            assert report.aggregate > 0
            assert 0 < jain_fairness(report.user_throughputs) <= 1


class TestMacToAnalyticConsistency:
    def test_engine_matches_mac_level_composition(self):
        """A one-extender, two-user network computed three ways: the
        analytic engine, the DCF simulator for the WiFi stage, and the
        1901 simulator for the PLC stage."""
        rng = np.random.default_rng(3)
        wifi_rates = [117.0, 39.0]
        plc_rate = 80.0
        scenario = Scenario(wifi_rates=np.array([wifi_rates]).reshape(2, 1),
                            plc_rates=np.array([plc_rate]))
        engine = evaluate(scenario, [0, 0])
        # WiFi stage, protocol level.
        dcf = DcfSimulator(wifi_rates, rng=rng).run(5e6)
        # PLC stage, protocol level (single extender, saturated).
        plc = Ieee1901CsmaSimulator([plc_rate], rng=rng).run(3e6)
        mac_end_to_end = min(dcf.aggregate_mbps, plc.throughputs_mbps[0])
        # Protocol overheads cost some throughput, but the bottleneck
        # structure (who limits whom) must agree within 25%.
        assert mac_end_to_end == pytest.approx(engine.aggregate, rel=0.25)

    def test_wifi_bottleneck_detected_consistently(self):
        scenario = Scenario(wifi_rates=np.array([[13.0]]),
                            plc_rates=np.array([150.0]))
        engine = evaluate(scenario, [0])
        assert not engine.bottleneck_is_plc[0]
        rng = np.random.default_rng(1)
        dcf = DcfSimulator([13.0], rng=rng).run(3e6)
        assert dcf.aggregate_mbps < 150.0


class TestControllerOverDynamics:
    def test_controller_replays_online_simulation(self):
        """Drive a CentralController with the same scan reports an
        OnlineSimulation generates and check consistent outcomes."""
        rng = np.random.default_rng(11)
        plan = sample_floor_plan(4, rng)
        sim = OnlineSimulation(plan, "wolt",
                               rng=np.random.default_rng(12))
        sim.seed_users(8)
        scenario = sim._scenario()
        cc = CentralController(scenario.plc_rates, policy="wolt")
        for idx, uid in enumerate(scenario.user_ids):
            cc.receive_scan_report(ScanReport(
                user_id=int(uid), wifi_rates=scenario.wifi_rates[idx]))
        cc.reconfigure()
        cc_report = cc.network_report()
        wolt_report = solve_wolt(scenario).report
        assert cc_report.aggregate == pytest.approx(
            wolt_report.aggregate, rel=1e-6)

    def test_incremental_wolt_tracks_full_wolt_over_churn(self):
        """Zero-hysteresis IncrementalWolt stays near full WOLT through
        an arrival/departure sequence."""
        rng = np.random.default_rng(13)
        scenario = enterprise_floor(5, 30, rng)
        ctrl = IncrementalWolt(scenario.plc_rates, min_gain_mbps=0.0)
        # Arrivals in two waves with a reconfigure between.
        for uid in range(15):
            ctrl.add_user(uid, scenario.wifi_rates[uid])
        ctrl.reconfigure()
        for uid in range(15, 30):
            ctrl.add_user(uid, scenario.wifi_rates[uid])
        # Some departures.
        for uid in (0, 5, 20):
            ctrl.remove_user(uid)
        outcome = ctrl.reconfigure()
        assert outcome.aggregate_after >= 0.95 * outcome.wolt_aggregate


class TestDemandAwareOverTopology:
    def test_video_workload_end_to_end(self):
        rng = np.random.default_rng(21)
        scenario = enterprise_floor(6, 18, rng)
        demands = np.tile([25.0, 8.0, 2.0], 6)
        wolt = solve_wolt(scenario).assignment
        report = evaluate_with_demands(scenario, wolt, demands)
        # The audio class (2 Mbps) is essentially always satisfiable.
        audio = np.arange(18)[2::3]
        assert report.satisfied[audio].mean() >= 0.8
        assert report.aggregate <= demands.sum() + 1e-6


class TestPhyConsistency:
    def test_stronger_radio_never_hurts_throughput(self):
        rng = np.random.default_rng(31)
        plan = sample_floor_plan(5, rng)
        plan = plan.with_users(np.column_stack(
            [rng.uniform(0, 100, 12), rng.uniform(0, 100, 12)]))
        from repro.net.topology import build_scenario

        weak = build_scenario(plan, phy=WifiPhy(tx_power_dbm=10.0))
        strong = build_scenario(plan, phy=WifiPhy(tx_power_dbm=23.0))
        weak_agg = solve_wolt(weak).aggregate_throughput
        strong_agg = solve_wolt(strong).aggregate_throughput
        assert strong_agg >= weak_agg - 1e-6
