"""Tests for the slot-level MAC simulators (802.11 DCF and IEEE 1901).

These validate that the analytic sharing laws the WOLT model relies on
*emerge* from protocol behaviour instead of being assumed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plc.mac import Ieee1901CsmaSimulator, TdmaScheduler
from repro.wifi.mac import DcfParameters, DcfSimulator
from repro.wifi.sharing import cell_throughput


class TestDcfSimulator:
    def test_single_station_near_phy_rate(self):
        sim = DcfSimulator([130.0], rng=np.random.default_rng(0))
        result = sim.run(2e6)
        # Alone, a station gets its PHY rate minus small MAC overhead.
        assert 0.85 * 130.0 <= result.aggregate_mbps <= 130.0
        assert result.collisions == 0

    def test_throughput_fair_sharing_emerges(self):
        """Stations at very different rates get equal throughput."""
        sim = DcfSimulator([130.0, 13.0], rng=np.random.default_rng(1))
        result = sim.run(5e6)
        t_fast, t_slow = result.throughputs_mbps
        assert t_fast == pytest.approx(t_slow, rel=0.1)

    def test_performance_anomaly_emerges(self):
        """One slow peer drags a fast station far below half rate."""
        rng = np.random.default_rng(2)
        alone = DcfSimulator([130.0], rng=rng).run(2e6).aggregate_mbps
        with_slow = DcfSimulator([130.0, 13.0], rng=rng).run(5e6)
        assert with_slow.throughputs_mbps[0] < 0.25 * alone

    def test_aggregate_tracks_eq1_shape(self):
        """Within ~25% of Eq. (1) (CSMA overhead costs the rest)."""
        rng = np.random.default_rng(3)
        for rates in ([130.0, 52.0], [117.0, 26.0, 13.0]):
            result = DcfSimulator(rates, rng=rng).run(5e6)
            expected = cell_throughput(rates)
            assert result.aggregate_mbps == pytest.approx(expected,
                                                          rel=0.25)

    def test_collisions_increase_with_stations(self):
        rng = np.random.default_rng(4)
        few = DcfSimulator([65.0] * 2, rng=rng).run(3e6)
        many = DcfSimulator([65.0] * 8, rng=rng).run(3e6)
        assert many.collisions > few.collisions

    def test_equal_frame_counts(self):
        rng = np.random.default_rng(5)
        result = DcfSimulator([130.0, 65.0, 26.0], rng=rng).run(5e6)
        frames = result.frames_delivered
        assert frames.max() <= 1.2 * frames.min() + 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            DcfSimulator([])
        with pytest.raises(ValueError):
            DcfSimulator([0.0])
        with pytest.raises(ValueError):
            DcfSimulator([10.0]).run(0.0)
        with pytest.raises(ValueError):
            DcfParameters().frame_airtime_us(0.0)


class TestIeee1901Simulator:
    def test_single_extender_gets_most_airtime(self):
        sim = Ieee1901CsmaSimulator([100.0],
                                    rng=np.random.default_rng(0))
        result = sim.run(2e6)
        assert result.throughputs_mbps[0] == pytest.approx(
            100.0 * (2500.0 / 2600.0), rel=0.1)
        assert result.collisions == 0

    def test_time_fair_sharing_emerges(self):
        """Airtime equalizes regardless of PHY rate differences."""
        rng = np.random.default_rng(1)
        result = Ieee1901CsmaSimulator([60.0, 160.0], rng=rng).run(3e7)
        assert result.airtime_shares[0] == pytest.approx(0.5, abs=0.05)
        # Throughputs therefore scale with the PHY rates.
        ratio = result.throughputs_mbps[1] / result.throughputs_mbps[0]
        assert ratio == pytest.approx(160.0 / 60.0, rel=0.2)

    def test_one_over_k_scaling(self):
        """Fig. 2c: per-link throughput scales as ~1/k."""
        rng = np.random.default_rng(2)
        rates = [60.0, 90.0, 120.0, 160.0]
        solo = Ieee1901CsmaSimulator(rates[:1], rng=rng).run(
            5e6).throughputs_mbps[0]
        four = Ieee1901CsmaSimulator(rates, rng=rng).run(3e7)
        assert four.throughputs_mbps[0] == pytest.approx(solo / 4,
                                                         rel=0.3)

    def test_deferral_counter_reduces_collisions(self):
        """1901's DC discipline collides less than naive CSMA would;
        collision fraction stays in single digits."""
        rng = np.random.default_rng(3)
        result = Ieee1901CsmaSimulator([100.0] * 4, rng=rng).run(1e7)
        busy_events = result.simulated_time_us / 2600.0
        assert result.collisions / busy_events < 0.15

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Ieee1901CsmaSimulator([])
        with pytest.raises(ValueError):
            Ieee1901CsmaSimulator([-1.0])
        with pytest.raises(ValueError):
            Ieee1901CsmaSimulator([10.0]).run(-5.0)


class TestTdmaScheduler:
    def test_equal_weights_match_eq2(self):
        sched = TdmaScheduler([60.0, 90.0, 120.0])
        out = sched.throughputs()
        assert out == pytest.approx([20.0, 30.0, 40.0])

    def test_idle_extender_slots_reused(self):
        sched = TdmaScheduler([60.0, 90.0])
        out = sched.throughputs(active=[True, False])
        assert out == pytest.approx([60.0, 0.0])

    def test_weighted_qos(self):
        sched = TdmaScheduler([100.0, 100.0], weights=[3.0, 1.0])
        out = sched.throughputs()
        assert out == pytest.approx([75.0, 25.0])

    def test_all_idle(self):
        sched = TdmaScheduler([60.0])
        assert sched.throughputs(active=[False]) == pytest.approx([0.0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TdmaScheduler([])
        with pytest.raises(ValueError):
            TdmaScheduler([-1.0])
        with pytest.raises(ValueError):
            TdmaScheduler([10.0], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            TdmaScheduler([10.0], weights=[0.0])
        with pytest.raises(ValueError):
            TdmaScheduler([10.0, 20.0]).throughputs(active=[True])
