"""Tests for fairness and per-user comparison metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.metrics import (bottom_k_users, compare_per_user,
                               jain_fairness, top_k_users)


class TestJainFairness:
    def test_perfect_equality(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user(self):
        assert jain_fairness([42.0]) == pytest.approx(1.0)

    def test_total_starvation_limit(self):
        # One user takes everything among n: index -> 1/n.
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1,
                    max_size=30))
    @settings(max_examples=200)
    def test_bounds(self, xs):
        f = jain_fairness(xs)
        assert 0.0 <= f <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1,
                    max_size=30), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=100)
    def test_scale_invariance(self, xs, scale):
        assert jain_fairness(xs) == pytest.approx(
            jain_fairness([x * scale for x in xs]))


class TestComparePerUser:
    def test_fig4b_style_fractions(self):
        baseline = [10.0, 10.0, 10.0, 10.0]
        candidate = [15.0, 9.0, 10.0, 20.0]
        cmp = compare_per_user(baseline, candidate)
        assert cmp.improved_fraction == pytest.approx(0.5)
        assert cmp.degraded_fraction == pytest.approx(0.25)
        assert cmp.unchanged_fraction == pytest.approx(0.25)
        assert cmp.deltas.tolist() == [5.0, -1.0, 0.0, 10.0]

    def test_tolerance_band(self):
        cmp = compare_per_user([10.0], [10.0 + 1e-9])
        assert cmp.unchanged_fraction == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_per_user([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_per_user([], [])

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=20), st.integers(0, 2**31 - 1))
    @settings(max_examples=100)
    def test_fractions_partition(self, baseline, seed):
        rng = np.random.default_rng(seed)
        candidate = rng.uniform(0, 100, len(baseline))
        cmp = compare_per_user(baseline, candidate)
        total = (cmp.improved_fraction + cmp.degraded_fraction
                 + cmp.unchanged_fraction)
        assert total == pytest.approx(1.0)


class TestTopBottomK:
    def test_bottom_k(self):
        assert bottom_k_users([5.0, 1.0, 3.0], 2).tolist() == [1, 2]

    def test_top_k(self):
        assert top_k_users([5.0, 1.0, 3.0], 2).tolist() == [0, 2]

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            bottom_k_users([1.0], 0)
        with pytest.raises(ValueError):
            top_k_users([1.0], 2)

    def test_stability_on_ties(self):
        assert bottom_k_users([2.0, 2.0, 2.0], 2).tolist() == [0, 1]
