"""Tests for the random-waypoint mobility extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.mobility import (MobilitySimulation, RandomWaypoint)
from repro.sim.runner import sample_floor_plan


class TestRandomWaypoint:
    def _walker(self, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        return RandomWaypoint([50.0, 50.0], 100.0, 100.0, rng, **kwargs)

    def test_stays_in_bounds(self):
        walker = self._walker()
        for _ in range(200):
            pos = walker.advance(1.0)
            assert 0.0 <= pos[0] <= 100.0
            assert 0.0 <= pos[1] <= 100.0

    def test_moves_over_time(self):
        walker = self._walker(pause_time=0.0)
        start = walker.position.copy()
        walker.advance(30.0)
        assert np.hypot(*(walker.position - start)) > 1.0

    def test_speed_bounds_displacement(self):
        walker = self._walker(v_min=1.0, v_max=1.0, pause_time=0.0)
        start = walker.position.copy()
        walker.advance(5.0)
        assert np.hypot(*(walker.position - start)) <= 5.0 + 1e-9

    def test_zero_dt_is_noop(self):
        walker = self._walker()
        pos = walker.position.copy()
        walker.advance(0.0)
        assert np.allclose(walker.position, pos)

    def test_pause_halts_motion(self):
        walker = self._walker(v_min=2.0, v_max=2.0, pause_time=1e9)
        # Force arrival at the first waypoint, then it pauses ~forever.
        walker.advance(500.0)
        held = walker.position.copy()
        walker.advance(10.0)
        assert np.allclose(walker.position, held)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypoint([0, 0], 10, 10, rng, v_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint([0, 0], 10, 10, rng, v_min=2.0, v_max=1.0)
        with pytest.raises(ValueError):
            RandomWaypoint([0, 0], 10, 10, rng, pause_time=-1.0)
        with pytest.raises(ValueError):
            self._walker().advance(-1.0)


class TestMobilitySimulation:
    def _sim(self, policy="wolt", seed=0, n_users=10, **kwargs):
        plan_seq, walk_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(plan_seq)
        plan = sample_floor_plan(5, rng)
        return MobilitySimulation(plan, n_users, policy,
                                  rng=np.random.default_rng(walk_seq),
                                  **kwargs)

    def test_epochs_recorded(self):
        sim = self._sim()
        history = sim.run(3)
        assert [e.epoch for e in history] == [1, 2, 3]
        assert sim.history == history

    def test_first_epoch_counts_no_handoffs(self):
        sim = self._sim()
        stats = sim.run_epoch()
        assert stats.handoffs == 0  # nobody was associated before

    def test_mobility_induces_handoffs(self):
        sim = self._sim(epoch_duration=30.0)
        history = sim.run(6)
        assert sum(e.handoffs for e in history[1:]) > 0

    def test_throughput_positive(self):
        for policy in ("wolt", "rssi"):
            sim = self._sim(policy=policy, seed=3)
            stats = sim.run_epoch()
            assert stats.aggregate_throughput > 0

    def test_displacement_scales_with_epoch_length(self):
        short = self._sim(seed=5, epoch_duration=1.0)
        long = self._sim(seed=5, epoch_duration=20.0)
        d_short = np.mean([e.mean_displacement_m for e in short.run(3)])
        d_long = np.mean([e.mean_displacement_m for e in long.run(3)])
        assert d_long > d_short

    def test_wolt_beats_rssi_on_average_fixed_model(self):
        aggs = {}
        for policy in ("wolt", "rssi"):
            sim = self._sim(policy=policy, seed=9, n_users=15,
                            plc_mode="fixed")
            aggs[policy] = np.mean(
                [e.aggregate_throughput for e in sim.run(4)])
        assert aggs["wolt"] >= aggs["rssi"] - 1e-6

    def test_validation(self):
        rng = np.random.default_rng(0)
        plan = sample_floor_plan(3, rng)
        with pytest.raises(ValueError):
            MobilitySimulation(plan, 5, "magic", rng=rng)
        with pytest.raises(ValueError):
            MobilitySimulation(plan, 0, "wolt", rng=rng)
        with pytest.raises(ValueError):
            self._sim().run(0)
