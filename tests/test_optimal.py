"""Tests for the brute-force optimal search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import (brute_force_optimal, search_space_size)
from repro.core.problem import Scenario
from repro.net.engine import evaluate

from .conftest import random_scenario


class TestBruteForce:
    def test_fig3_optimum(self, fig3_scenario):
        res = brute_force_optimal(fig3_scenario)
        assert res.assignment.tolist() == [1, 0]
        assert res.aggregate_throughput == pytest.approx(40.0)
        assert res.explored == 4

    def test_search_space_size(self, fig3_scenario):
        assert search_space_size(fig3_scenario) == 4

    def test_reachability_prunes_space(self):
        wifi = np.array([[10.0, 0.0], [10.0, 20.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([50.0, 50.0]))
        assert search_space_size(sc) == 2

    def test_cap_enforced(self, rng):
        sc = random_scenario(rng, 25, 8)
        with pytest.raises(ValueError, match="exceeds the cap"):
            brute_force_optimal(sc)

    def test_cap_override(self, rng):
        sc = random_scenario(rng, 5, 3)
        res = brute_force_optimal(sc, max_combinations=3**5)
        assert res.explored == 3**5

    def test_unreachable_user_rejected(self):
        sc = Scenario(wifi_rates=np.array([[0.0]]), plc_rates=np.ones(1))
        with pytest.raises(ValueError, match="no reachable extender"):
            brute_force_optimal(sc)

    def test_capacity_filtering(self):
        wifi = np.full((2, 2), 50.0)
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([100.0, 10.0]),
                      capacities=[1, 1])
        res = brute_force_optimal(sc)
        counts = np.bincount(res.assignment, minlength=2)
        assert np.all(counts <= 1)

    def test_infeasible_capacity_raises(self):
        wifi = np.full((2, 1), 50.0)
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([100.0]),
                      capacities=[1])
        with pytest.raises(ValueError, match="no capacity-feasible"):
            brute_force_optimal(sc)

    @given(st.integers(2, 6), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_dominates_any_random_assignment(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        res = brute_force_optimal(sc)
        for _ in range(10):
            assignment = rng.integers(0, n_ext, size=n_users)
            assert res.aggregate_throughput >= \
                evaluate(sc, assignment).aggregate - 1e-9
