"""Public-API surface tests: everything advertised is importable."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_missing_headliners(self):
        for name in ("Scenario", "solve_wolt", "evaluate",
                     "rssi_assignment", "greedy_assignment",
                     "enterprise_floor", "EmulatedTestbed",
                     "OnlineSimulation", "jain_fairness"):
            assert name in repro.__all__


@pytest.mark.parametrize("module", [
    "repro.core", "repro.wifi", "repro.plc", "repro.net", "repro.sim",
    "repro.testbed", "repro.experiments", "repro.cli",
])
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


@pytest.mark.parametrize("module", [
    "repro.core.problem", "repro.core.hungarian", "repro.core.phase1",
    "repro.core.phase2", "repro.core.wolt", "repro.core.baselines",
    "repro.core.optimal", "repro.core.controller", "repro.core.dynamic",
    "repro.core.fairness", "repro.core.bounds", "repro.core.partition",
    "repro.wifi.phy", "repro.wifi.mac", "repro.wifi.sharing",
    "repro.wifi.channels", "repro.wifi.rate_adaptation",
    "repro.plc.sharing", "repro.plc.mac", "repro.plc.channel",
    "repro.plc.homeplug", "repro.plc.noise", "repro.plc.qos",
    "repro.net.engine", "repro.net.topology", "repro.net.metrics",
    "repro.net.estimate", "repro.net.visualize",
    "repro.sim.events", "repro.sim.dynamics", "repro.sim.runner",
    "repro.sim.traffic", "repro.sim.mobility", "repro.sim.failures",
    "repro.sim.workload", "repro.sim.trace",
    "repro.testbed.devices", "repro.testbed.measurement",
    "repro.testbed.calibration",
    "repro.experiments.fig2", "repro.experiments.fig3",
    "repro.experiments.fig4", "repro.experiments.fig5",
    "repro.experiments.fig6", "repro.experiments.robustness",
    "repro.experiments.sweeps", "repro.experiments.common",
])
def test_every_module_has_docstring(module):
    mod = importlib.import_module(module)
    assert mod.__doc__ and len(mod.__doc__) > 40, module
