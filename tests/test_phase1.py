"""Tests for Phase I (the relaxed assignment problem, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.phase1 import phase1_utilities, solve_phase1
from repro.core.problem import UNASSIGNED, Scenario

from .conftest import random_scenario


class TestUtilities:
    def test_eq12_definition(self, fig3_scenario):
        u = phase1_utilities(fig3_scenario)
        # c = [60, 20], |A| = 2 -> fair PLC shares [30, 10].
        assert u[0].tolist() == [15.0, 10.0]   # min(30,15), min(10,10)
        assert u[1].tolist() == [30.0, 10.0]   # min(30,40), min(10,20)

    def test_unreachable_pairs_forbidden(self):
        sc = Scenario(wifi_rates=np.array([[0.0, 20.0]]),
                      plc_rates=np.array([60.0, 20.0]))
        u = phase1_utilities(sc)
        assert u[0, 0] == -np.inf
        assert np.isfinite(u[0, 1])


class TestSolvePhase1:
    def test_fig3_anchors(self, fig3_scenario):
        res = solve_phase1(fig3_scenario)
        # Optimal Phase I: user 2 -> ext 1 (30), user 1 -> ext 2 (10).
        assert res.assignment.tolist() == [1, 0]
        assert res.objective == pytest.approx(40.0)
        assert res.anchored_users.tolist() == [0, 1]
        assert res.unmatched_extenders.size == 0

    def test_one_user_per_extender(self, rng):
        sc = random_scenario(rng, 20, 6)
        res = solve_phase1(sc)
        attached = res.assignment[res.assignment != UNASSIGNED]
        assert len(attached) == 6
        assert sorted(attached.tolist()) == list(range(6))

    def test_fewer_users_than_extenders(self, rng):
        sc = random_scenario(rng, 3, 8)
        res = solve_phase1(sc)
        attached = res.assignment[res.assignment != UNASSIGNED]
        assert len(attached) == 3
        assert res.unmatched_extenders.size == 5

    def test_unreachable_extender_left_unmatched(self):
        wifi = np.array([[10.0, 0.0], [20.0, 0.0], [30.0, 0.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([50.0, 50.0]))
        res = solve_phase1(sc)
        assert res.unmatched_extenders.tolist() == [1]
        attached = res.assignment[res.assignment != UNASSIGNED]
        assert attached.tolist() == [0]

    def test_hall_violation_falls_back(self):
        """Two extenders reachable only through the same single user."""
        wifi = np.array([[10.0, 10.0], [0.0, 0.0], [0.0, 0.0]])
        # Users 2,3 unreachable everywhere would break Scenario semantics
        # in Phase II, but Phase I itself must still anchor extenders.
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([50.0, 50.0]))
        res = solve_phase1(sc)
        attached = res.assignment[res.assignment != UNASSIGNED]
        assert len(attached) == 1  # only user 0 can anchor anything

    def test_no_users(self):
        sc = Scenario(wifi_rates=np.empty((0, 2)),
                      plc_rates=np.array([10.0, 20.0]))
        res = solve_phase1(sc)
        assert res.anchored_users.size == 0
        assert res.unmatched_extenders.tolist() == [0, 1]

    def test_wrong_utility_shape_rejected(self, fig3_scenario):
        with pytest.raises(ValueError):
            solve_phase1(fig3_scenario, utilities=np.ones((3, 3)))

    @given(st.integers(2, 15), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy_certified_optimum(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        res = solve_phase1(sc)
        u = phase1_utilities(sc)
        if n_users >= n_ext:
            ref_rows, ref_cols = linear_sum_assignment(u.T, maximize=True)
            ref = u.T[ref_rows, ref_cols].sum()
        else:
            ref_rows, ref_cols = linear_sum_assignment(u, maximize=True)
            ref = u[ref_rows, ref_cols].sum()
        assert res.objective == pytest.approx(float(ref))

    @given(st.integers(2, 12), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_anchors_consistent_with_assignment(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext, reachable_prob=0.8)
        res = solve_phase1(sc)
        anchored = np.flatnonzero(res.assignment != UNASSIGNED)
        assert anchored.tolist() == res.anchored_users.tolist()
        # Anchors only sit on reachable extenders.
        for i in anchored:
            assert sc.wifi_rates[i, res.assignment[i]] > 0
