"""Tests for Phase II (Problem 2) solvers."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.phase1 import solve_phase1
from repro.core.phase2 import (solve_phase2, solve_phase2_continuous,
                               wifi_objective)
from repro.core.problem import UNASSIGNED, Scenario

from .conftest import random_scenario


def _exhaustive_phase2_optimum(scenario, phase1_assignment):
    """Brute-force the Problem-2 optimum over the pending users."""
    pending = np.flatnonzero(np.asarray(phase1_assignment) == UNASSIGNED)
    best = -np.inf
    choices = [scenario.reachable(int(u)).tolist() for u in pending]
    for combo in itertools.product(*choices):
        assignment = np.array(phase1_assignment, dtype=int)
        assignment[pending] = combo
        if scenario.capacities is not None:
            counts = np.bincount(assignment,
                                 minlength=scenario.n_extenders)
            if np.any(counts > scenario.capacities):
                continue
        best = max(best, wifi_objective(scenario, assignment))
    return best


class TestCombinatorialSolver:
    def test_completes_the_assignment(self, rng):
        sc = random_scenario(rng, 12, 4)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        assert np.all(res.assignment != UNASSIGNED)
        assert res.was_integral

    def test_preserves_phase1_anchors(self, rng):
        sc = random_scenario(rng, 10, 3)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        for user in p1.anchored_users:
            assert res.assignment[user] == p1.assignment[user]

    def test_objective_matches_recomputation(self, rng):
        sc = random_scenario(rng, 10, 3)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        assert res.objective == pytest.approx(
            wifi_objective(sc, res.assignment))

    def test_no_pending_users_is_noop(self, fig3_scenario):
        p1 = solve_phase1(fig3_scenario)
        res = solve_phase2(fig3_scenario, p1.assignment)
        assert res.assignment.tolist() == p1.assignment.tolist()

    def test_unattachable_user_raises(self):
        wifi = np.array([[10.0, 5.0], [0.0, 0.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([50.0, 50.0]))
        p1 = solve_phase1(sc)
        with pytest.raises(ValueError, match="cannot be attached"):
            solve_phase2(sc, p1.assignment)

    def test_capacities_respected(self, rng):
        sc = random_scenario(rng, 9, 3, capacities=True)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        counts = np.bincount(res.assignment, minlength=3)
        assert np.all(counts <= sc.capacities)

    def test_wrong_length_rejected(self, fig3_scenario):
        with pytest.raises(ValueError):
            solve_phase2(fig3_scenario, [0])

    @given(st.integers(3, 7), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_near_optimal_on_small_instances(self, n_users, n_ext, seed):
        """Local search stays close to the brute-force Problem-2 optimum.

        The relocation+swap neighbourhood can leave ~10% on the table in
        adversarial instances (multi-move optima); empirically the mean
        ratio is >0.99 (see test_mean_quality_over_many_seeds).
        """
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        best = _exhaustive_phase2_optimum(sc, p1.assignment)
        assert res.objective >= best * 0.85 - 1e-9
        assert res.objective <= best + 1e-6

    def test_mean_quality_over_many_seeds(self):
        """Across 60 random small instances, mean optimality ratio > 0.98."""
        ratios = []
        for seed in range(60):
            rng = np.random.default_rng(seed)
            sc = random_scenario(rng, int(rng.integers(3, 8)),
                                 int(rng.integers(2, 4)))
            p1 = solve_phase1(sc)
            res = solve_phase2(sc, p1.assignment)
            best = _exhaustive_phase2_optimum(sc, p1.assignment)
            ratios.append(res.objective / best)
        assert np.mean(ratios) > 0.98
        assert min(ratios) > 0.85

    @given(st.integers(4, 20), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_local_search_cannot_improve(self, n_users, n_ext, seed):
        """Returned assignment is a single-relocation local optimum."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        p1 = solve_phase1(sc)
        res = solve_phase2(sc, p1.assignment)
        base = res.objective
        movable = np.flatnonzero(p1.assignment == UNASSIGNED)
        for user in movable:
            for j in range(n_ext):
                if j == res.assignment[user]:
                    continue
                trial = res.assignment.copy()
                trial[user] = j
                assert wifi_objective(sc, trial) <= base + 1e-6


class TestContinuousSolver:
    def test_agrees_with_combinatorial_on_small_instances(self, rng):
        for _ in range(5):
            sc = random_scenario(rng, 6, 2)
            p1 = solve_phase1(sc)
            comb = solve_phase2(sc, p1.assignment)
            cont = solve_phase2_continuous(sc, p1.assignment, rng=rng)
            assert np.all(cont.assignment != UNASSIGNED)
            # Theorem 3: both integral routes reach comparable objectives
            # (SLSQP from a random interior point can lose a few percent).
            assert cont.objective >= comb.objective * 0.80

    def test_theorem3_integrality(self, rng):
        """The continuous optimum snaps to (near-)integral solutions."""
        integral_count = 0
        trials = 6
        for _ in range(trials):
            sc = random_scenario(rng, 5, 2)
            p1 = solve_phase1(sc)
            cont = solve_phase2_continuous(sc, p1.assignment, rng=rng)
            integral_count += bool(cont.was_integral)
        assert integral_count >= trials // 2

    def test_no_pending_users_is_noop(self, fig3_scenario):
        p1 = solve_phase1(fig3_scenario)
        res = solve_phase2_continuous(fig3_scenario, p1.assignment)
        assert res.assignment.tolist() == p1.assignment.tolist()
        assert res.iterations == 0

    def test_unattachable_user_raises(self):
        wifi = np.array([[10.0, 5.0], [0.0, 0.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([50.0, 50.0]))
        p1 = solve_phase1(sc)
        with pytest.raises(ValueError, match="no reachable extender"):
            solve_phase2_continuous(sc, p1.assignment)
