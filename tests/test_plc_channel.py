"""Tests for the power-line wiring topology model."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plc.channel import PANEL, PowerlineNetwork, random_building


def _tiny_network() -> PowerlineNetwork:
    graph = nx.Graph()
    graph.add_node(PANEL, kind="panel")
    graph.add_node("junction-0", kind="junction")
    graph.add_node("outlet-0", kind="outlet")
    graph.add_node("outlet-1", kind="outlet")
    graph.add_edge(PANEL, "junction-0", length_m=20.0)
    graph.add_edge("junction-0", "outlet-0", length_m=5.0)
    graph.add_edge("junction-0", "outlet-1", length_m=30.0)
    return PowerlineNetwork(graph=graph)


class TestPowerlineNetwork:
    def test_outlets_sorted(self):
        net = _tiny_network()
        assert net.outlets == ["outlet-0", "outlet-1"]

    def test_path_attenuation_accumulates(self):
        net = _tiny_network()
        att = net.path_attenuation_db("outlet-0")
        expected = (25.0 * net.cable_loss_db_per_m
                    + net.junction_loss_db + 2 * net.outlet_loss_db)
        assert att == pytest.approx(expected)

    def test_longer_drop_attenuates_more(self):
        net = _tiny_network()
        assert (net.path_attenuation_db("outlet-1")
                > net.path_attenuation_db("outlet-0"))

    def test_nearer_outlet_has_better_rate(self):
        net = _tiny_network()
        assert net.rate_of("outlet-0") >= net.rate_of("outlet-1")

    def test_rates_vector_matches_scalars(self):
        net = _tiny_network()
        rates = net.rates()
        assert rates[0] == pytest.approx(net.rate_of("outlet-0"))
        assert rates[1] == pytest.approx(net.rate_of("outlet-1"))

    def test_unknown_outlet_rejected(self):
        with pytest.raises(KeyError):
            _tiny_network().path_attenuation_db("outlet-99")

    def test_missing_panel_rejected(self):
        graph = nx.Graph()
        graph.add_node("outlet-0", kind="outlet")
        with pytest.raises(ValueError, match="panel"):
            PowerlineNetwork(graph=graph)

    def test_missing_length_rejected(self):
        graph = nx.Graph()
        graph.add_node(PANEL, kind="panel")
        graph.add_node("outlet-0", kind="outlet")
        graph.add_edge(PANEL, "outlet-0")
        with pytest.raises(ValueError, match="length_m"):
            PowerlineNetwork(graph=graph)


class TestRandomBuilding:
    def test_outlet_count(self, rng):
        building = random_building(12, rng)
        assert len(building.outlets) == 12

    def test_invalid_outlet_count(self, rng):
        with pytest.raises(ValueError):
            random_building(0, rng)

    def test_deterministic_given_seed(self):
        a = random_building(8, np.random.default_rng(5)).rates()
        b = random_building(8, np.random.default_rng(5)).rates()
        assert np.allclose(a, b)

    def test_rates_span_a_realistic_range(self):
        """Across many buildings, outlet rates spread like Fig. 2b."""
        rng = np.random.default_rng(0)
        rates = np.concatenate(
            [random_building(10, rng).rates() for _ in range(10)])
        assert rates.min() >= 0.0
        assert rates.max() <= 250.0
        assert rates.std() > 10.0  # genuine diversity between outlets

    @given(st.integers(1, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_every_outlet_connected_to_panel(self, n, seed):
        building = random_building(n, np.random.default_rng(seed))
        for outlet in building.outlets:
            assert building.path_attenuation_db(outlet) > 0

    def test_custom_circuit_count(self, rng):
        building = random_building(9, rng, n_circuits=3)
        junctions = [node for node, data in building.graph.nodes(data=True)
                     if data.get("kind") == "junction"]
        assert len(junctions) == 3
