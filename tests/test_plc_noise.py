"""Tests for the time-varying PLC noise / capacity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plc.noise import NoiseProcess, TimeVaryingPlc


class TestNoiseProcess:
    def test_starts_at_mean(self):
        proc = NoiseProcess(mean_db=3.0)
        assert proc.excess_noise_db == 3.0

    def test_never_negative(self):
        proc = NoiseProcess(mean_db=0.0, sigma_db=5.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert proc.step(rng) >= 0.0

    def test_mean_reversion(self):
        """Long-run average stays near the configured mean."""
        proc = NoiseProcess(mean_db=5.0, sigma_db=1.0, impulse_prob=0.0)
        rng = np.random.default_rng(1)
        samples = [proc.step(rng) for _ in range(3000)]
        assert np.mean(samples[500:]) == pytest.approx(5.0, abs=1.0)

    def test_impulses_raise_noise(self):
        quiet = NoiseProcess(sigma_db=0.0, impulse_prob=0.0)
        bursty = NoiseProcess(sigma_db=0.0, impulse_prob=0.5,
                              impulse_db=20.0)
        rng_a, rng_b = (np.random.default_rng(2) for _ in range(2))
        quiet_mean = np.mean([quiet.step(rng_a) for _ in range(500)])
        bursty_mean = np.mean([bursty.step(rng_b) for _ in range(500)])
        assert bursty_mean > quiet_mean + 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseProcess(reversion=0.0)
        with pytest.raises(ValueError):
            NoiseProcess(sigma_db=-1.0)
        with pytest.raises(ValueError):
            NoiseProcess(impulse_prob=1.5)


class TestTimeVaryingPlc:
    def test_best_case_matches_quiescent(self):
        rng = np.random.default_rng(0)
        model = TimeVaryingPlc([30.0, 50.0], rng)
        best = model.best_case_capacities()
        assert best[0] > best[1]  # less attenuation, more capacity

    def test_noise_only_reduces_capacity(self):
        rng = np.random.default_rng(1)
        model = TimeVaryingPlc([30.0, 40.0, 50.0], rng)
        best = model.best_case_capacities()
        for _ in range(50):
            caps = model.step()
            assert np.all(caps <= best + 1e-9)
            assert np.all(caps >= 0.0)

    def test_run_shape(self):
        rng = np.random.default_rng(2)
        model = TimeVaryingPlc([30.0, 40.0], rng)
        trajectory = model.run(20)
        assert trajectory.shape == (20, 2)

    def test_capacity_actually_varies(self):
        rng = np.random.default_rng(3)
        model = TimeVaryingPlc([45.0] * 3, rng)
        trajectory = model.run(50)
        assert trajectory.std(axis=0).max() > 0.0

    def test_custom_noise_processes(self):
        rng = np.random.default_rng(4)
        silent = [NoiseProcess(sigma_db=0.0, impulse_prob=0.0)
                  for _ in range(2)]
        model = TimeVaryingPlc([30.0, 40.0], rng, noise=silent)
        trajectory = model.run(10)
        # Zero-variance noise: capacity constant at best case.
        assert np.allclose(trajectory, model.best_case_capacities())

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            TimeVaryingPlc([], rng)
        with pytest.raises(ValueError):
            TimeVaryingPlc([-5.0], rng)
        with pytest.raises(ValueError):
            TimeVaryingPlc([30.0], rng, noise=[NoiseProcess()] * 2)
        with pytest.raises(ValueError):
            TimeVaryingPlc([30.0], rng).run(0)

    def test_stale_association_story(self):
        """The motivating behaviour: capacities drift enough that a
        capacity ordering measured at epoch 0 eventually flips."""
        rng = np.random.default_rng(7)
        model = TimeVaryingPlc([40.0, 43.0], rng,
                               noise=[NoiseProcess(sigma_db=3.0,
                                                   impulse_prob=0.2),
                                      NoiseProcess(sigma_db=3.0,
                                                   impulse_prob=0.2)])
        initial = model.capacities()
        flipped = False
        for _ in range(100):
            caps = model.step()
            if (caps[0] - caps[1]) * (initial[0] - initial[1]) < 0:
                flipped = True
                break
        assert flipped
