"""Unit and property tests for the PLC medium-sharing laws."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plc.sharing import (allocate_backhaul, max_min_time_shares,
                               time_fair_throughputs)


class TestTimeFairThroughputs:
    def test_single_extender_gets_full_rate(self):
        out = time_fair_throughputs([100.0])
        assert out == pytest.approx([100.0])

    def test_equal_split_matches_fig2c(self):
        """Fig. 2c: with k active extenders each delivers 1/k of isolation."""
        rates = np.array([60.0, 90.0, 120.0, 160.0])
        for k in (2, 3, 4):
            active = np.zeros(4, dtype=bool)
            active[:k] = True
            out = time_fair_throughputs(rates, active)
            assert out[:k] == pytest.approx(rates[:k] / k)
            assert np.all(out[k:] == 0.0)

    def test_inactive_extenders_do_not_consume_time(self):
        out = time_fair_throughputs([100.0, 50.0], active=[True, False])
        assert out[0] == pytest.approx(100.0)
        assert out[1] == 0.0

    def test_no_active_extenders(self):
        out = time_fair_throughputs([100.0, 50.0], active=[False, False])
        assert np.all(out == 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            time_fair_throughputs([-1.0])

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            time_fair_throughputs([1.0, 2.0], active=[True])


class TestMaxMinTimeShares:
    def test_all_saturated_split_equally(self):
        shares = max_min_time_shares([np.inf, np.inf, np.inf])
        assert shares == pytest.approx([1 / 3] * 3)

    def test_small_demand_fully_served(self):
        shares = max_min_time_shares([0.1, np.inf])
        assert shares == pytest.approx([0.1, 0.9])

    def test_fig3c_greedy_redistribution(self):
        """Ext 1 needs 15/60 = 0.25 time; ext 2 takes the leftover 0.75."""
        shares = max_min_time_shares([15 / 60, np.inf])
        assert shares == pytest.approx([0.25, 0.75])

    def test_zero_demand_gets_zero(self):
        shares = max_min_time_shares([0.0, 0.5])
        assert shares == pytest.approx([0.0, 0.5])

    def test_total_demand_below_one_leaves_idle_time(self):
        shares = max_min_time_shares([0.2, 0.3])
        assert shares == pytest.approx([0.2, 0.3])

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_min_time_shares([-0.1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            max_min_time_shares([np.nan])

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1,
                    max_size=12))
    @settings(max_examples=200)
    def test_feasibility_and_demand_caps(self, demands):
        shares = max_min_time_shares(demands)
        assert shares.sum() <= 1.0 + 1e-9
        assert np.all(shares >= 0.0)
        assert np.all(shares <= np.asarray(demands) + 1e-9)

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1,
                    max_size=12))
    @settings(max_examples=200)
    def test_work_conserving(self, demands):
        """Either all demand is served or the full medium time is used."""
        shares = max_min_time_shares(demands)
        total_demand = float(np.sum(demands))
        if total_demand <= 1.0:
            assert shares.sum() == pytest.approx(min(total_demand, 1.0))
        else:
            assert shares.sum() == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2,
                    max_size=10))
    @settings(max_examples=200)
    def test_max_min_property(self, demands):
        """No unsatisfied extender gets less than a satisfied-or-equal peer."""
        demands_arr = np.asarray(demands)
        shares = max_min_time_shares(demands_arr)
        unsatisfied = shares < demands_arr - 1e-9
        if np.any(unsatisfied):
            floor = shares[unsatisfied].min()
            # Everyone else either got its full demand or at least the floor.
            ok = (shares >= demands_arr - 1e-9) | (shares >= floor - 1e-9)
            assert np.all(ok)


class TestAllocateBackhaul:
    def test_isolation_throughput(self):
        alloc = allocate_backhaul([160.0], [1000.0])
        assert alloc.throughputs == pytest.approx([160.0])
        assert alloc.saturated.tolist() == [True]

    def test_fig2c_time_fair_when_all_saturated(self):
        rates = np.array([60.0, 90.0, 120.0, 160.0])
        alloc = allocate_backhaul(rates, [1e9] * 4)
        assert alloc.throughputs == pytest.approx(rates / 4)

    def test_fig3c_leftover_redistribution(self):
        alloc = allocate_backhaul([60.0, 20.0], [15.0, 1e9])
        assert alloc.throughputs == pytest.approx([15.0, 15.0])
        assert alloc.saturated.tolist() == [False, True]

    def test_no_redistribution_matches_eq2(self):
        alloc = allocate_backhaul([60.0, 20.0], [15.0, 1e9],
                                  mode="active")
        assert alloc.throughputs == pytest.approx([15.0, 10.0])

    def test_inactive_extender_frees_the_medium(self):
        alloc = allocate_backhaul([60.0, 20.0], [0.0, 1e9])
        assert alloc.throughputs == pytest.approx([0.0, 20.0])

    def test_dead_plc_link_contends_without_progress(self):
        alloc = allocate_backhaul([0.0, 100.0], [10.0, 1e9])
        assert alloc.throughputs[0] == 0.0
        # The dead link still occupies contention time.
        assert alloc.throughputs[1] < 100.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allocate_backhaul([60.0], [15.0, 20.0])

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            allocate_backhaul([-60.0], [15.0])
        with pytest.raises(ValueError):
            allocate_backhaul([60.0], [-15.0])

    @given(st.integers(min_value=1, max_value=10), st.integers(0, 2**31 - 1))
    @settings(max_examples=100)
    def test_throughput_never_exceeds_demand_or_share(self, n, seed):
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 200.0, n)
        demands = rng.uniform(0.0, 300.0, n)
        alloc = allocate_backhaul(rates, demands)
        assert np.all(alloc.throughputs <= demands + 1e-9)
        assert np.all(alloc.throughputs <= alloc.time_shares * rates + 1e-9)
        assert alloc.busy_fraction <= 1.0 + 1e-9

    @given(st.integers(min_value=1, max_value=10), st.integers(0, 2**31 - 1))
    @settings(max_examples=100)
    def test_redistribution_never_hurts(self, n, seed):
        """Max-min redistribution dominates plain time-fair sharing."""
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 200.0, n)
        demands = rng.uniform(0.0, 300.0, n)
        with_redist = allocate_backhaul(rates, demands,
                                        mode="redistribute")
        without = allocate_backhaul(rates, demands, mode="active")
        assert (with_redist.throughputs.sum()
                >= without.throughputs.sum() - 1e-9)
