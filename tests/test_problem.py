"""Tests for the Scenario data model and assignment validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import (UNASSIGNED, Scenario, users_of,
                                validate_assignment)


class TestScenario:
    def test_basic_shapes(self, fig3_scenario):
        assert fig3_scenario.n_users == 2
        assert fig3_scenario.n_extenders == 2

    def test_1d_wifi_rates_promoted(self):
        sc = Scenario(wifi_rates=np.array([10.0, 20.0]),
                      plc_rates=np.array([5.0, 6.0]))
        assert sc.n_users == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.ones((2, 3)), plc_rates=np.ones(2))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.array([[np.nan]]),
                      plc_rates=np.array([1.0]))

    def test_infinite_rates_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Scenario(wifi_rates=np.array([[np.inf]]),
                     plc_rates=np.array([1.0]))
        with pytest.raises(ValueError, match="finite"):
            Scenario(wifi_rates=np.ones((1, 1)),
                     plc_rates=np.array([-np.inf]))

    def test_negative_plc_rejected(self):
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.ones((1, 1)), plc_rates=np.array([-1.0]))

    def test_capacity_validation(self):
        sc = Scenario(wifi_rates=np.ones((3, 2)), plc_rates=np.ones(2),
                      capacities=[2, 2])
        assert sc.capacity_of(0) == 2.0
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.ones((3, 2)), plc_rates=np.ones(2),
                      capacities=[2])
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.ones((3, 2)), plc_rates=np.ones(2),
                      capacities=[-1, 2])

    def test_uncapacitated_is_infinite(self, fig3_scenario):
        assert fig3_scenario.capacity_of(0) == np.inf

    def test_reachable_filters_dead_links(self):
        sc = Scenario(wifi_rates=np.array([[0.0, 20.0, 30.0]]),
                      plc_rates=np.ones(3))
        assert sc.reachable(0).tolist() == [1, 2]

    def test_subset_users(self):
        sc = Scenario(wifi_rates=np.arange(6, dtype=float).reshape(3, 2) + 1,
                      plc_rates=np.ones(2), user_ids=np.array([10, 11, 12]))
        sub = sc.subset_users([2, 0])
        assert sub.n_users == 2
        assert sub.user_ids.tolist() == [12, 10]
        assert sub.wifi_rates[0].tolist() == [5.0, 6.0]

    def test_with_users_appends(self):
        sc = Scenario(wifi_rates=np.ones((1, 2)), plc_rates=np.ones(2))
        grown = sc.with_users(np.array([[2.0, 3.0]]))
        assert grown.n_users == 2
        assert grown.wifi_rates[1].tolist() == [2.0, 3.0]

    def test_user_ids_length_checked(self):
        with pytest.raises(ValueError):
            Scenario(wifi_rates=np.ones((2, 1)), plc_rates=np.ones(1),
                     user_ids=np.array([1]))


class TestValidateAssignment:
    def test_valid_complete(self, fig3_scenario):
        out = validate_assignment(fig3_scenario, [0, 1])
        assert out.tolist() == [0, 1]

    def test_incomplete_rejected_when_required(self, fig3_scenario):
        with pytest.raises(ValueError, match="constraint \\(7\\)"):
            validate_assignment(fig3_scenario, [0, UNASSIGNED])

    def test_incomplete_allowed_when_not_required(self, fig3_scenario):
        out = validate_assignment(fig3_scenario, [0, UNASSIGNED],
                                  require_complete=False)
        assert out[1] == UNASSIGNED

    def test_out_of_range_rejected(self, fig3_scenario):
        with pytest.raises(ValueError, match="out of range"):
            validate_assignment(fig3_scenario, [0, 5])

    def test_wrong_length_rejected(self, fig3_scenario):
        with pytest.raises(ValueError):
            validate_assignment(fig3_scenario, [0])

    def test_unreachable_assignment_rejected(self):
        sc = Scenario(wifi_rates=np.array([[0.0, 20.0]]),
                      plc_rates=np.ones(2))
        with pytest.raises(ValueError, match="unreachable"):
            validate_assignment(sc, [0])

    def test_capacity_enforced(self):
        sc = Scenario(wifi_rates=np.ones((3, 2)), plc_rates=np.ones(2),
                      capacities=[1, 3])
        with pytest.raises(ValueError, match="constraint \\(8\\)"):
            validate_assignment(sc, [0, 0, 1])
        validate_assignment(sc, [0, 1, 1])  # fits

    def test_capacity_check_can_be_disabled(self):
        sc = Scenario(wifi_rates=np.ones((3, 2)), plc_rates=np.ones(2),
                      capacities=[1, 3])
        validate_assignment(sc, [0, 0, 1], enforce_capacity=False)


def test_users_of():
    assert users_of([0, 1, 0, UNASSIGNED], 0).tolist() == [0, 2]
    assert users_of([0, 1, 0], 2).tolist() == []
