"""Cross-module property tests: system-level invariants under hypothesis.

Each property ties at least two subsystems together and must hold for
*any* random instance — the safety net behind refactors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (greedy_assignment, rssi_assignment,
                                  selfish_greedy_assignment)
from repro.core.bounds import certify
from repro.core.phase1 import phase1_utilities, solve_phase1
from repro.core.problem import UNASSIGNED
from repro.core.wolt import solve_wolt
from repro.net.engine import evaluate
from repro.plc.qos import optimal_tdma_weights
from repro.plc.mac import TdmaScheduler
from repro.sim.traffic import evaluate_with_demands

from .conftest import random_scenario

seeds = st.integers(0, 2**31 - 1)


class TestAssignmentInvariants:
    @given(st.integers(3, 12), st.integers(2, 5), seeds)
    @settings(max_examples=60, deadline=None)
    def test_all_policies_complete_and_reachable(self, n_users, n_ext,
                                                 seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext, reachable_prob=0.8)
        for assignment in (
                solve_wolt(sc).assignment,
                greedy_assignment(sc, rng.permutation(n_users)),
                rssi_assignment(sc),
                selfish_greedy_assignment(sc)):
            assert np.all(assignment != UNASSIGNED)
            for i in range(n_users):
                assert sc.wifi_rates[i, assignment[i]] > 0

    @given(st.integers(3, 10), st.integers(2, 4), seeds)
    @settings(max_examples=60, deadline=None)
    def test_mode_ordering(self, n_users, n_ext, seed):
        """redistribute >= active >= fixed for any fixed assignment."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        r = evaluate(sc, assignment, plc_mode="redistribute").aggregate
        a = evaluate(sc, assignment, plc_mode="active").aggregate
        f = evaluate(sc, assignment, plc_mode="fixed").aggregate
        assert r >= a - 1e-9
        assert a >= f - 1e-9

    @given(st.integers(3, 10), st.integers(2, 4), seeds)
    @settings(max_examples=40, deadline=None)
    def test_certificates_valid_for_every_policy(self, n_users, n_ext,
                                                 seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        for mode in ("redistribute", "fixed"):
            for assignment in (solve_wolt(sc, plc_mode=mode).assignment,
                               rssi_assignment(sc)):
                cert = certify(sc, assignment, plc_mode=mode)
                assert cert.achieved <= cert.upper_bound + 1e-6


class TestPhase1Invariants:
    @given(st.integers(2, 12), st.integers(2, 6), seeds)
    @settings(max_examples=60, deadline=None)
    def test_utilities_bounded_by_both_links(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        u = phase1_utilities(sc)
        fair = sc.plc_rates / n_ext
        for i in range(n_users):
            for j in range(n_ext):
                assert u[i, j] <= fair[j] + 1e-9
                assert u[i, j] <= sc.wifi_rates[i, j] + 1e-9

    @given(st.integers(4, 12), st.integers(2, 5), seeds)
    @settings(max_examples=60, deadline=None)
    def test_phase1_anchors_distinct_extenders(self, n_users, n_ext,
                                               seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        res = solve_phase1(sc)
        anchored = res.assignment[res.assignment != UNASSIGNED]
        assert len(set(anchored.tolist())) == len(anchored)

    @given(st.integers(4, 10), st.integers(2, 4), seeds)
    @settings(max_examples=40, deadline=None)
    def test_scaling_rates_scales_phase1_objective(self, n_users, n_ext,
                                                   seed):
        """Homogeneity: doubling every rate doubles the Phase-I value."""
        from repro.core.problem import Scenario

        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        doubled = Scenario(wifi_rates=2 * sc.wifi_rates,
                           plc_rates=2 * sc.plc_rates)
        assert solve_phase1(doubled).objective == pytest.approx(
            2 * solve_phase1(sc).objective)


class TestTdmaConsistency:
    @given(st.integers(2, 10), st.integers(2, 4), seeds)
    @settings(max_examples=60, deadline=None)
    def test_tdma_weights_reproduce_engine_grants(self, n_users, n_ext,
                                                  seed):
        """TdmaScheduler(optimal weights) == the engine's PLC grants."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        weights = optimal_tdma_weights(sc, assignment)
        if weights.sum() == 0:
            return
        report = evaluate(sc, assignment, plc_mode="redistribute")
        tdma = TdmaScheduler(sc.plc_rates, weights=weights)
        granted = tdma.throughputs() * weights.sum()
        # Scheduler normalizes weights to 1; undo to compare shares.
        assert np.allclose(np.minimum(granted, report.wifi_throughputs),
                           report.extender_throughputs, atol=1e-6)


class TestDemandConsistency:
    @given(st.integers(2, 8), st.integers(1, 3), seeds)
    @settings(max_examples=40, deadline=None)
    def test_scaling_demands_down_scales_throughput_down(self, n_users,
                                                         n_ext, seed):
        """Halving every demand can only reduce every user's share —
        and in the fully-satisfied regime, exactly halves it."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        demands = rng.uniform(0.1, 5.0, n_users)  # small: satisfiable
        full = evaluate_with_demands(sc, assignment, demands)
        half = evaluate_with_demands(sc, assignment, demands / 2)
        assert np.all(half.user_throughputs
                      <= full.user_throughputs + 1e-6)
