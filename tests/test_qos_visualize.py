"""Tests for the TDMA QoS provisioning and ASCII floor rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import Scenario
from repro.net.topology import FloorPlan
from repro.net.visualize import render_floor
from repro.plc.mac import TdmaScheduler
from repro.plc.qos import (QosClass, class_weighted_schedule,
                           optimal_tdma_weights)


def _scenario() -> Scenario:
    return Scenario(wifi_rates=np.array([[15.0, 10.0], [40.0, 20.0]]),
                    plc_rates=np.array([60.0, 20.0]))


class TestOptimalTdmaWeights:
    def test_matches_max_min_allocation_fig3c(self):
        """Fig. 3c: ext 1 needs 0.25 time, ext 2 takes the leftover."""
        weights = optimal_tdma_weights(_scenario(), [0, 1])
        assert weights == pytest.approx([0.25, 0.75])

    def test_idle_extender_gets_zero(self):
        weights = optimal_tdma_weights(_scenario(), [0, 0])
        assert weights[1] == 0.0

    def test_tdma_schedule_reproduces_csma_throughputs(self):
        """A TdmaScheduler with the computed weights delivers what the
        redistributing CSMA backhaul delivers."""
        sc = _scenario()
        weights = optimal_tdma_weights(sc, [0, 1])
        sched = TdmaScheduler(sc.plc_rates, weights=weights)
        out = sched.throughputs()
        # Fig 3c backhaul grants: 15 (demand-capped) and 15.
        assert out[0] == pytest.approx(15.0)
        assert out[1] == pytest.approx(15.0)

    def test_weights_sum_bounded(self):
        weights = optimal_tdma_weights(_scenario(), [1, 0])
        assert 0.0 <= weights.sum() <= 1.0 + 1e-9


class TestClassWeightedSchedule:
    def test_voice_extender_boosted(self):
        sc = _scenario()
        classes = [QosClass("voice", 4.0), QosClass("best-effort", 1.0)]
        weights = class_weighted_schedule(sc, [0, 1], classes)
        base = optimal_tdma_weights(sc, [0, 1])
        # Extender 0 serves the voice user: boosted relative share.
        assert (weights[0] / weights[1]
                > base[0] / base[1])
        assert weights.sum() == pytest.approx(1.0)

    def test_class_count_checked(self):
        with pytest.raises(ValueError):
            class_weighted_schedule(_scenario(), [0, 1],
                                    [QosClass("voice", 1.0)])

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            QosClass("bad", -1.0)

    def test_all_idle_gives_zeros(self):
        sc = _scenario()
        weights = class_weighted_schedule(
            sc, [-1, -1], [QosClass("a", 1.0), QosClass("b", 1.0)])
        assert np.all(weights == 0.0)


class TestRenderFloor:
    def _plan(self) -> FloorPlan:
        return FloorPlan(width_m=100.0, height_m=100.0,
                         extender_xy=np.array([[10.0, 10.0],
                                               [90.0, 90.0]]),
                         user_xy=np.array([[12.0, 10.0], [88.0, 90.0]]),
                         plc_rates=np.array([100.0, 100.0]))

    def test_contains_extender_glyphs(self):
        art = render_floor(self._plan())
        assert "A" in art and "B" in art

    def test_users_marked_by_assignment(self):
        art = render_floor(self._plan(), assignment=[0, 1])
        assert "a" in art and "b" in art

    def test_unassigned_users_are_dots(self):
        art = render_floor(self._plan(), assignment=[-1, -1])
        assert "." in art

    def test_raster_dimensions(self):
        art = render_floor(self._plan(), width_chars=30, height_chars=10)
        lines = art.splitlines()
        assert len(lines) == 13  # border + 10 rows + border + legend
        assert all(len(line) == 32 for line in lines[:-1])

    def test_validation(self):
        plan = self._plan()
        with pytest.raises(ValueError):
            render_floor(plan, width_chars=1)
        with pytest.raises(ValueError):
            render_floor(plan, assignment=[0])
