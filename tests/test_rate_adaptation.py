"""Tests for ARF rate adaptation against the PHY's MCS ladder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wifi.phy import MCS_TABLE_80211N_20MHZ, WifiPhy
from repro.wifi.rate_adaptation import (ArfRateController,
                                        frame_success_probability,
                                        probe_rate)


class TestSuccessModel:
    def test_half_at_threshold(self):
        threshold = MCS_TABLE_80211N_20MHZ[3][0]
        assert frame_success_probability(threshold, 3) == pytest.approx(
            0.5)

    def test_monotone_in_snr(self):
        probs = [frame_success_probability(snr, 4)
                 for snr in (5.0, 10.0, 15.0, 20.0, 25.0)]
        assert probs == sorted(probs)

    def test_high_margin_near_certain(self):
        assert frame_success_probability(40.0, 0) > 0.99

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            frame_success_probability(10.0, 99)


class TestArfController:
    def test_starts_at_lowest(self):
        assert ArfRateController().rate_mbps == \
            MCS_TABLE_80211N_20MHZ[0][1]

    def test_steps_up_after_successes(self):
        ctrl = ArfRateController(up_threshold=3)
        for _ in range(3):
            ctrl.record(True)
        assert ctrl.mcs_index == 1

    def test_steps_down_after_failures(self):
        ctrl = ArfRateController(up_threshold=1, down_threshold=2,
                                 mcs_index=4)
        ctrl.record(False)
        assert ctrl.mcs_index == 4
        ctrl.record(False)
        assert ctrl.mcs_index == 3

    def test_failure_resets_success_streak(self):
        ctrl = ArfRateController(up_threshold=3)
        ctrl.record(True)
        ctrl.record(True)
        ctrl.record(False)
        ctrl.record(True)
        ctrl.record(True)
        assert ctrl.mcs_index == 0  # streak broken, never reached 3

    def test_clamped_at_ladder_ends(self):
        ctrl = ArfRateController(up_threshold=1, down_threshold=1)
        for _ in range(50):
            ctrl.record(True)
        assert ctrl.mcs_index == len(MCS_TABLE_80211N_20MHZ) - 1
        for _ in range(50):
            ctrl.record(False)
        assert ctrl.mcs_index == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArfRateController(up_threshold=0)
        with pytest.raises(ValueError):
            ArfRateController(mcs_index=99)


class TestProbeRate:
    def test_tracks_ideal_ladder_at_high_snr(self):
        """At generous SNR, ARF's delivered rate approaches the ideal
        MCS lookup (within ~25%, paying for occasional probing dips)."""
        phy = WifiPhy(spatial_streams=1)
        rng = np.random.default_rng(0)
        snr = 35.0
        probed = probe_rate(snr, rng)
        ideal = phy.rate_for_snr(snr)
        assert probed == pytest.approx(ideal, rel=0.25)

    def test_zero_at_hopeless_snr(self):
        rng = np.random.default_rng(1)
        assert probe_rate(-20.0, rng) < 1.0

    def test_monotone_in_snr_statistically(self):
        rng = np.random.default_rng(2)
        rates = [probe_rate(snr, rng) for snr in (5.0, 15.0, 25.0, 35.0)]
        assert rates == sorted(rates)

    def test_spatial_streams_multiply(self):
        r1 = probe_rate(30.0, np.random.default_rng(3),
                        spatial_streams=1)
        r2 = probe_rate(30.0, np.random.default_rng(3),
                        spatial_streams=2)
        assert r2 == pytest.approx(2 * r1)

    def test_validation(self):
        with pytest.raises(ValueError):
            probe_rate(10.0, np.random.default_rng(0), n_frames=10,
                       warmup_frames=10)

    @given(st.floats(min_value=0.0, max_value=40.0),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_never_exceeds_ladder_top(self, snr, seed):
        rate = probe_rate(snr, np.random.default_rng(seed),
                          n_frames=1200, warmup_frames=200)
        assert 0.0 <= rate <= MCS_TABLE_80211N_20MHZ[-1][1] + 1e-9
