"""Tests for the Monte-Carlo and online trial runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import UNASSIGNED
from repro.sim.runner import (run_online_comparison, run_policy,
                              run_trials, sample_floor_plan)

from .conftest import random_scenario


class TestRunPolicy:
    def test_all_policies_produce_complete_assignments(self, rng):
        scenario = random_scenario(rng, 12, 4)
        for policy in ("wolt", "greedy", "rssi", "random"):
            outcome = run_policy(scenario, policy, rng)
            assert outcome.policy == policy
            assert np.all(outcome.assignment != UNASSIGNED)
            assert outcome.aggregate_throughput > 0
            assert 0 < outcome.jain_fairness <= 1
            assert outcome.user_throughputs.sum() == pytest.approx(
                outcome.aggregate_throughput)

    def test_unknown_policy_rejected(self, rng):
        scenario = random_scenario(rng, 4, 2)
        with pytest.raises(ValueError):
            run_policy(scenario, "magic")

    def test_plc_mode_changes_scoring(self, rng):
        scenario = random_scenario(rng, 10, 4)
        fixed = run_policy(scenario, "rssi", plc_mode="fixed")
        phys = run_policy(scenario, "rssi", plc_mode="redistribute")
        assert fixed.assignment.tolist() == phys.assignment.tolist()
        assert fixed.aggregate_throughput <= phys.aggregate_throughput


class TestRunTrials:
    def test_trial_structure(self):
        trials = run_trials(3, 4, 8, seed=0)
        assert len(trials) == 3
        for trial in trials:
            assert set(trial.outcomes) == {"wolt", "greedy", "rssi"}
            assert trial.scenario.n_users == 8

    def test_deterministic_given_seed(self):
        a = run_trials(2, 3, 6, seed=5)
        b = run_trials(2, 3, 6, seed=5)
        for ta, tb in zip(a, b):
            for policy in ta.outcomes:
                assert ta.aggregate(policy) == pytest.approx(
                    tb.aggregate(policy))

    def test_different_seeds_differ(self):
        a = run_trials(1, 3, 6, seed=1)[0].aggregate("wolt")
        b = run_trials(1, 3, 6, seed=2)[0].aggregate("wolt")
        assert a != pytest.approx(b)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policies"):
            run_trials(1, 3, 6, policies=("wolt", "magic"))

    def test_paper_shape_wolt_wins_under_fixed_model(self):
        trials = run_trials(5, 15, 36, seed=0, plc_mode="fixed")
        for trial in trials:
            assert trial.aggregate("wolt") > trial.aggregate("greedy")


class TestSampleFloorPlan:
    def test_dimensions(self, rng):
        plan = sample_floor_plan(6, rng, width_m=80.0, height_m=40.0)
        assert plan.n_extenders == 6
        assert plan.n_users == 0
        assert np.all(plan.extender_xy[:, 0] <= 80.0)
        assert np.all(plan.extender_xy[:, 1] <= 40.0)
        assert np.all(plan.plc_rates >= 0)


class TestOnlineComparison:
    def test_histories_cover_policies(self):
        histories = run_online_comparison(2, 4, 5, seed=0)
        assert set(histories) == {"wolt", "greedy"}
        for history in histories.values():
            assert len(history) == 2

    def test_policies_see_identical_arrival_process(self):
        histories = run_online_comparison(2, 4, 5, seed=3,
                                          policies=("wolt", "rssi"))
        wolt = histories["wolt"]
        rssi = histories["rssi"]
        assert [e.arrivals for e in wolt] == [e.arrivals for e in rssi]
        assert [e.n_users for e in wolt] == [e.n_users for e in rssi]
