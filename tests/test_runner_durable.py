"""Durable sweep orchestration: checkpoint/resume, timeouts, signals.

The contract under test (see ``docs/ROBUSTNESS.md``):

* a checkpointed run killed at an arbitrary point (SIGKILL of the whole
  process, SIGKILL of one worker, a truncated journal tail) and then
  resumed is **bit-identical** to an uninterrupted run, across worker
  counts;
* a hung trial is reaped within a bounded wall-clock budget and
  recorded as an explicit :class:`TrialFailure` without stalling or
  losing the other trials;
* SIGINT/SIGTERM drain gracefully: completed trials are returned with
  an explicit ``interrupted`` marker and the journal stays resumable;
* argument validation fails fast (duplicate policies, bad trial
  counts, unknown policy names).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.sim.checkpoint import CheckpointExists, FingerprintMismatch
from repro.sim.faults import CrashSchedule
from repro.sim.runner import (POOL_ERROR_TYPE, TIMEOUT_ERROR_TYPE,
                              TrialFailure, run_online_comparison,
                              run_trials, shutdown_warm_pools)

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Small, fast sweep parameters shared by every test in this module.
SCALE = dict(n_extenders=3, n_users=6, seed=11, plc_mode="fixed")
POLICIES = ("wolt", "greedy")
N_TRIALS = 6


def _assert_runs_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert type(ra) is type(rb)
        if isinstance(ra, TrialFailure):
            assert ra == rb
            continue
        assert np.array_equal(ra.scenario.wifi_rates,
                              rb.scenario.wifi_rates)
        assert np.array_equal(ra.scenario.plc_rates,
                              rb.scenario.plc_rates)
        assert set(ra.outcomes) == set(rb.outcomes)
        for policy in ra.outcomes:
            oa, ob = ra.outcomes[policy], rb.outcomes[policy]
            assert oa.aggregate_throughput == ob.aggregate_throughput
            assert oa.jain_fairness == ob.jain_fairness
            assert np.array_equal(oa.user_throughputs,
                                  ob.user_throughputs)
            assert np.array_equal(oa.assignment, ob.assignment)


def _cold_run():
    return run_trials(N_TRIALS, policies=POLICIES, **SCALE)


@dataclass(frozen=True)
class KillWorkerOnce:
    """Fault hook that SIGKILLs its worker process once (flag-gated).

    The flag file carries the once-only state across the pool recycle:
    the retried attempt sees the flag and runs clean.  Must stay
    picklable (module-level dataclass) for the process pool.
    """

    trial: int
    flag: str

    def __call__(self, trial_index: int, attempt: int) -> None:
        if trial_index == self.trial and not os.path.exists(self.flag):
            with open(self.flag, "w") as handle:
                handle.write("killed\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class InterruptAt:
    """Fault hook that delivers a signal to the running process."""

    trial: int
    signum: int

    def __call__(self, trial_index: int, attempt: int) -> None:
        if trial_index == self.trial:
            os.kill(os.getpid(), self.signum)


#: Driver executed in a subprocess and SIGKILLed mid-sweep: the hook
#: kills the *whole process* at the start of trial 3, after trials
#: 0-2 have been journaled.
_KILLED_SWEEP_DRIVER = textwrap.dedent("""
    import os, signal, sys

    from repro.sim.runner import run_trials

    def kill_at_three(trial_index, attempt):
        if trial_index == 3:
            os.kill(os.getpid(), signal.SIGKILL)

    run_trials({n_trials}, n_extenders={n_extenders}, n_users={n_users},
               policies={policies!r}, seed={seed},
               plc_mode={plc_mode!r}, checkpoint=sys.argv[1],
               fault_hook=kill_at_three)
""")


def _run_killed_sweep(checkpoint: Path) -> None:
    """SIGKILL a checkpointed serial sweep mid-run, in a subprocess."""
    script = _KILLED_SWEEP_DRIVER.format(
        n_trials=N_TRIALS, policies=POLICIES, **SCALE)
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", script, str(checkpoint)],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert checkpoint.exists()


class TestCrashResume:
    def test_sigkilled_sweep_resumes_bit_identical(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        _run_killed_sweep(checkpoint)
        resumed = run_trials(N_TRIALS, policies=POLICIES,
                             checkpoint=checkpoint, resume=True,
                             **SCALE)
        assert resumed.resumed == 3  # trials 0-2 survived the SIGKILL
        assert resumed.interrupted is None
        _assert_runs_identical(_cold_run(), resumed)

    def test_resume_under_workers_matches_cold_serial(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        _run_killed_sweep(checkpoint)
        resumed = run_trials(N_TRIALS, policies=POLICIES, workers=2,
                             checkpoint=checkpoint, resume=True,
                             **SCALE)
        _assert_runs_identical(_cold_run(), resumed)

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        _run_killed_sweep(checkpoint)
        with open(checkpoint, "ab") as handle:
            handle.write(b'{"kind":"record","index":5,"payl')
        resumed = run_trials(N_TRIALS, policies=POLICIES,
                             checkpoint=checkpoint, resume=True,
                             **SCALE)
        _assert_runs_identical(_cold_run(), resumed)

    def test_resume_of_complete_run_recomputes_nothing(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        first = run_trials(N_TRIALS, policies=POLICIES,
                           checkpoint=checkpoint, **SCALE)
        again = run_trials(
            N_TRIALS, policies=POLICIES, checkpoint=checkpoint,
            resume=True,
            fault_hook=InterruptAt(0, signal.SIGTERM),  # must not run
            **SCALE)
        assert again.resumed == N_TRIALS
        _assert_runs_identical(first, again)

    def test_checkpointed_runs_snapshot_byte_identically(self,
                                                         tmp_path):
        serial, parallel = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=serial,
                   **SCALE)
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=parallel,
                   workers=2, **SCALE)
        assert serial.read_bytes() == parallel.read_bytes()

    def test_warm_pool_reuse_stays_bit_identical(self, tmp_path):
        """Back-to-back pool runs (2nd on a warm pool) match byte-wise."""
        shutdown_warm_pools()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=first,
                   workers=2, **SCALE)
        # The pool survives run_trials; this run leases it warm.
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=second,
                   workers=2, **SCALE)
        assert first.read_bytes() == second.read_bytes()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        params = dict(SCALE)
        run_trials(2, policies=POLICIES, checkpoint=checkpoint,
                   **params)
        params["seed"] = 999
        with pytest.raises(FingerprintMismatch):
            run_trials(2, policies=POLICIES, checkpoint=checkpoint,
                       resume=True, **params)

    def test_existing_checkpoint_without_resume_rejected(self,
                                                         tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        run_trials(2, policies=POLICIES, checkpoint=checkpoint, **SCALE)
        with pytest.raises(CheckpointExists):
            run_trials(2, policies=POLICIES, checkpoint=checkpoint,
                       **SCALE)


class TestWorkerCrashSupervision:
    def test_sigkilled_worker_is_retried_bit_identically(self,
                                                         tmp_path):
        hook = KillWorkerOnce(trial=2, flag=str(tmp_path / "flag"))
        survived = run_trials(N_TRIALS, policies=POLICIES, workers=2,
                              max_retries=1, fault_hook=hook, **SCALE)
        assert not any(isinstance(t, TrialFailure) for t in survived)
        _assert_runs_identical(_cold_run(), survived)

    def test_repeatedly_dying_trial_becomes_explicit_failure(self,
                                                             tmp_path):
        # No flag file is ever written with flag="" ... use a hook that
        # always kills its worker on one trial: the retry budget runs
        # out and the trial is recorded as a pool failure while every
        # other trial survives.
        hook = InterruptAt(2, signal.SIGKILL)
        result = run_trials(N_TRIALS, policies=POLICIES, workers=2,
                            max_retries=1, fault_hook=hook, **SCALE)
        failures = [t for t in result if isinstance(t, TrialFailure)]
        assert [f.trial_index for f in failures] == [2]
        assert failures[0].error_type == POOL_ERROR_TYPE
        cold = _cold_run()
        survivors = [t for t in result
                     if not isinstance(t, TrialFailure)]
        expected = [t for i, t in enumerate(cold) if i != 2]
        _assert_runs_identical(expected, survivors)


class TestTimeouts:
    def test_hung_trial_reaped_within_bounded_wallclock(self, tmp_path):
        # Trial 2 hangs hard (a 300 s sleep a SIGKILL can interrupt);
        # with a 1.5 s deadline the whole 5-trial sweep must still end
        # far sooner than the hang, with the hung trial an explicit
        # timeout failure and every other trial bit-identical to cold.
        hang = CrashSchedule(crashes={}, hangs={2: 1}, hang_s=300.0)
        start = time.monotonic()
        result = run_trials(5, policies=POLICIES, workers=2,
                            timeout_s=1.5, fault_hook=hang, **SCALE)
        elapsed = time.monotonic() - start
        assert elapsed < 60.0  # bounded: deadline + reap, not 300 s
        failures = [t for t in result if isinstance(t, TrialFailure)]
        assert [f.trial_index for f in failures] == [2]
        assert failures[0].error_type == TIMEOUT_ERROR_TYPE
        cold = run_trials(5, policies=POLICIES, **SCALE)
        survivors = [t for t in result
                     if not isinstance(t, TrialFailure)]
        expected = [t for i, t in enumerate(cold) if i != 2]
        _assert_runs_identical(expected, survivors)

    def test_timeout_failure_is_journaled_and_not_rerun(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        hang = CrashSchedule(crashes={}, hangs={1: 1}, hang_s=300.0)
        run_trials(3, policies=POLICIES, workers=2, timeout_s=1.5,
                   checkpoint=checkpoint, fault_hook=hang, **SCALE)
        resumed = run_trials(3, policies=POLICIES, checkpoint=checkpoint,
                             resume=True, **SCALE)
        assert resumed.resumed == 3
        failures = [t for t in resumed if isinstance(t, TrialFailure)]
        assert [f.trial_index for f in failures] == [1]
        assert failures[0].error_type == TIMEOUT_ERROR_TYPE

    def test_timeout_requires_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_trials(2, policies=POLICIES, timeout_s=1.0, **SCALE)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            run_trials(2, policies=POLICIES, workers=2, timeout_s=0.0,
                       **SCALE)


class TestGracefulSignals:
    def test_sigint_returns_partial_results_with_marker(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        result = run_trials(N_TRIALS, policies=POLICIES,
                            checkpoint=checkpoint,
                            fault_hook=InterruptAt(2, signal.SIGINT),
                            **SCALE)
        assert result.interrupted == "SIGINT"
        # Trial 2's hook fires before its body; the handler only sets a
        # flag, so trial 2 still completes and the loop stops after it.
        assert len(result) == 3
        _assert_runs_identical(_cold_run()[:3], result)
        # The journal keeps an explicit interruption marker for
        # forensics (dropped by the final snapshot after resume).
        assert '"event":"interrupted"' in checkpoint.read_text()
        assert '"signal":"SIGINT"' in checkpoint.read_text()

    def test_interrupted_run_resumes_to_completion(self, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=checkpoint,
                   fault_hook=InterruptAt(2, signal.SIGTERM), **SCALE)
        resumed = run_trials(N_TRIALS, policies=POLICIES,
                             checkpoint=checkpoint, resume=True,
                             **SCALE)
        assert resumed.interrupted is None
        assert resumed.resumed == 3
        _assert_runs_identical(_cold_run(), resumed)
        # The completing run compacted the journal: marker gone.
        assert "interrupted" not in checkpoint.read_text()


@pytest.fixture(scope="module")
def baseline_journal(tmp_path_factory):
    """Canonical snapshot bytes of a cold, serial, clean reference run."""
    path = tmp_path_factory.mktemp("baseline") / "cold.jsonl"
    run_trials(N_TRIALS, policies=POLICIES, checkpoint=path, **SCALE)
    return path.read_bytes()


class TestDispatchBitIdentityMatrix:
    """Dispatch shape must never leak into the journal bytes.

    The PR-6 matrix: workers x chunk size x {cold, checkpoint+resume}
    x {clean, fault-injected} all compact to the byte-identical
    canonical snapshot of the serial reference run.  Chunking, warm
    pools, retries and resume are *operational* concerns; the journal
    is science.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 3, None])
    def test_cold_clean_runs(self, tmp_path, baseline_journal, workers,
                             chunk_size):
        path = tmp_path / "run.jsonl"
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=path,
                   workers=workers, chunk_size=chunk_size, **SCALE)
        assert path.read_bytes() == baseline_journal

    @pytest.mark.parametrize("workers,chunk_size",
                             [(1, 1), (2, 3), (4, None)])
    def test_resumed_runs(self, tmp_path, baseline_journal, workers,
                          chunk_size):
        path = tmp_path / "run.jsonl"
        _run_killed_sweep(path)  # journals trials 0-2, then SIGKILL
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=path,
                   resume=True, workers=workers, chunk_size=chunk_size,
                   **SCALE)
        assert path.read_bytes() == baseline_journal

    @pytest.mark.parametrize("workers,chunk_size", [(2, 2), (4, 3)])
    def test_fault_injected_runs(self, tmp_path, baseline_journal,
                                 workers, chunk_size):
        # Trials 1 and 4 crash once each; the retried attempts rerun
        # with the same SeedSequence children, so the compacted journal
        # still matches the clean serial baseline byte for byte.
        hook = CrashSchedule(crashes={1: 1, 4: 1})
        path = tmp_path / "run.jsonl"
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=path,
                   workers=workers, chunk_size=chunk_size,
                   max_retries=2, fault_hook=hook, **SCALE)
        assert path.read_bytes() == baseline_journal

    @pytest.mark.parametrize("workers,chunk_size", [(2, 3), (2, None)])
    def test_resumed_fault_injected_runs(self, tmp_path,
                                         baseline_journal, workers,
                                         chunk_size):
        hook = CrashSchedule(crashes={4: 1})
        path = tmp_path / "run.jsonl"
        _run_killed_sweep(path)
        run_trials(N_TRIALS, policies=POLICIES, checkpoint=path,
                   resume=True, workers=workers, chunk_size=chunk_size,
                   max_retries=2, fault_hook=hook, **SCALE)
        assert path.read_bytes() == baseline_journal

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk_size"):
            run_trials(2, policies=POLICIES, workers=2, chunk_size=0,
                       **SCALE)


class TestArgumentValidation:
    def test_duplicate_policies_rejected(self):
        with pytest.raises(ValueError, match="duplicate policies"):
            run_trials(2, policies=("wolt", "greedy", "wolt"), **SCALE)

    def test_negative_trial_count_rejected(self):
        with pytest.raises(ValueError, match="n_trials"):
            run_trials(-1, policies=POLICIES, **SCALE)

    def test_zero_trials_is_a_valid_empty_run(self):
        result = run_trials(0, policies=POLICIES, **SCALE)
        assert list(result) == []
        assert result.interrupted is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policies"):
            run_trials(2, policies=("wolt", "nope"), **SCALE)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="resume"):
            run_trials(2, policies=POLICIES, resume=True, **SCALE)

    def test_online_comparison_validates_policies_up_front(self):
        with pytest.raises(ValueError, match="unknown policies"):
            run_online_comparison(n_epochs=1, n_extenders=3,
                                  initial_users=4,
                                  policies=("wolt", "gredy"))
