"""Parallel trial runner: worker count must never change the science.

``run_trials(workers=N)`` must return bit-identical results to the
serial run for any ``N`` (per-trial ``SeedSequence`` children make each
trial's stream independent of execution order), and worker exceptions
must propagate to the caller instead of silently dropping trials.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import checkpoint as checkpoint_mod
from repro.sim import runner
from repro.sim.faults import SleepSchedule
from repro.sim.runner import run_trials

N_TRIALS = 6
SCALE = dict(n_extenders=4, n_users=8, seed=424242)
POLICIES = ("wolt", "greedy", "rssi", "random")


def _assert_trials_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.scenario.wifi_rates, b.scenario.wifi_rates)
        assert np.array_equal(a.scenario.plc_rates, b.scenario.plc_rates)
        assert set(a.outcomes) == set(b.outcomes)
        for policy in a.outcomes:
            oa, ob = a.outcomes[policy], b.outcomes[policy]
            assert np.array_equal(oa.assignment, ob.assignment), policy
            assert oa.aggregate_throughput == ob.aggregate_throughput
            assert oa.jain_fairness == ob.jain_fairness
            assert np.array_equal(oa.user_throughputs, ob.user_throughputs)


class TestBitIdenticalAcrossWorkerCounts:
    def test_workers_4_matches_serial(self):
        serial = run_trials(N_TRIALS, policies=POLICIES, **SCALE)
        parallel = run_trials(N_TRIALS, policies=POLICIES, workers=4,
                              **SCALE)
        _assert_trials_identical(serial, parallel)

    def test_workers_2_matches_workers_3(self):
        two = run_trials(N_TRIALS, policies=("wolt", "rssi"), workers=2,
                         **SCALE)
        three = run_trials(N_TRIALS, policies=("wolt", "rssi"), workers=3,
                           **SCALE)
        _assert_trials_identical(two, three)

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_degenerate_worker_counts_run_serially(self, workers):
        trials = run_trials(2, policies=("rssi",), workers=workers, **SCALE)
        assert len(trials) == 2

    def test_different_seeds_differ(self):
        a = run_trials(2, n_extenders=4, n_users=8, seed=1,
                       policies=("rssi",))
        b = run_trials(2, n_extenders=4, n_users=8, seed=2,
                       policies=("rssi",))
        assert not np.array_equal(a[0].scenario.wifi_rates,
                                  b[0].scenario.wifi_rates)

    def test_trials_are_statistically_independent(self):
        trials = run_trials(3, policies=("rssi",), **SCALE)
        assert not np.array_equal(trials[0].scenario.wifi_rates,
                                  trials[1].scenario.wifi_rates)
        assert not np.array_equal(trials[1].scenario.wifi_rates,
                                  trials[2].scenario.wifi_rates)


class TestSubmissionOrderIndependence:
    def test_out_of_order_completion_reemits_in_submission_order(
            self, tmp_path, monkeypatch):
        """Chunk completion order must never leak into the results.

        Trial 0 sleeps while trials 1+ finish instantly, so with
        single-trial chunks on two workers the completions *must*
        arrive out of submission order (asserted via a journal spy) —
        yet the returned list and the compacted journal are identical
        to the serial run.
        """
        seen = []
        original_append = checkpoint_mod.TrialStore.append

        def spy(self, index, payload):
            seen.append(index)
            return original_append(self, index, payload)

        monkeypatch.setattr(checkpoint_mod.TrialStore, "append", spy)
        serial_path = tmp_path / "serial.jsonl"
        serial = run_trials(N_TRIALS, policies=("rssi",),
                            checkpoint=serial_path, **SCALE)
        assert seen == list(range(N_TRIALS))  # serial: submission order
        seen.clear()
        skewed_path = tmp_path / "skewed.jsonl"
        skewed = run_trials(
            N_TRIALS, policies=("rssi",), workers=2, chunk_size=1,
            fault_hook=SleepSchedule({0: 1.5}), checkpoint=skewed_path,
            **SCALE)
        assert sorted(seen) == list(range(N_TRIALS))
        assert seen != list(range(N_TRIALS))  # completed out of order
        assert seen[-1] == 0  # the slept trial finished last
        _assert_trials_identical(serial, skewed)  # ...results in order
        assert serial_path.read_bytes() == skewed_path.read_bytes()

    def test_chunked_dispatch_preserves_order_without_checkpoint(self):
        plain = run_trials(N_TRIALS, policies=("rssi",), **SCALE)
        skewed = run_trials(N_TRIALS, policies=("rssi",), workers=3,
                            chunk_size=2,
                            fault_hook=SleepSchedule({1: 0.6}),
                            max_retries=0, **SCALE)
        _assert_trials_identical(plain, skewed)


class TestErrorPropagation:
    def test_unknown_policy_rejected_before_dispatch(self):
        with pytest.raises(ValueError, match="unknown policies"):
            run_trials(2, n_extenders=3, n_users=4,
                       policies=("wolt", "psychic"), workers=4)

    def test_worker_exception_propagates(self):
        # A genuinely invalid trial (negative user count) blows up inside
        # the worker process; pool.map must re-raise it at the caller.
        with pytest.raises(ValueError):
            run_trials(2, n_extenders=3, n_users=-1, policies=("rssi",),
                       workers=2)

    def test_serial_exception_propagates(self, monkeypatch):
        def boom(payload):
            raise RuntimeError("trial exploded")

        monkeypatch.setattr(runner, "_run_single_trial", boom)
        with pytest.raises(RuntimeError, match="trial exploded"):
            run_trials(2, n_extenders=3, n_users=4, policies=("rssi",))
