"""Tests for the emulated hardware testbed and the §III measurements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testbed.calibration import (FIG2B_ISOLATION_MBPS,
                                       sample_isolation_capacities)
from repro.testbed.devices import EmulatedTestbed, Laptop, PlcExtender
from repro.testbed.measurement import (plc_isolation_study,
                                       plc_sharing_study,
                                       wifi_sharing_study)


def _bench(noise=0.0) -> EmulatedTestbed:
    bench = EmulatedTestbed(noise_fraction=noise,
                            rng=np.random.default_rng(0))
    bench.plug_extender(PlcExtender("ext-1", (0.0, 0.0), 100.0))
    bench.plug_extender(PlcExtender("ext-2", (30.0, 0.0), 50.0))
    bench.place_laptop(Laptop("lap-1", (2.0, 0.0)))
    bench.place_laptop(Laptop("lap-2", (28.0, 0.0)))
    return bench


class TestBenchSetup:
    def test_duplicate_devices_rejected(self):
        bench = _bench()
        with pytest.raises(ValueError):
            bench.plug_extender(PlcExtender("ext-1", (0, 0), 10.0))
        with pytest.raises(ValueError):
            bench.place_laptop(Laptop("lap-1", (0, 0)))

    def test_unknown_devices_rejected(self):
        bench = _bench()
        with pytest.raises(KeyError):
            bench.associate("lap-1", "ext-99")
        with pytest.raises(KeyError):
            bench.move_laptop("lap-99", (0, 0))

    def test_negative_plc_rate_rejected(self):
        with pytest.raises(ValueError):
            PlcExtender("x", (0, 0), -5.0)

    def test_associate_strongest_picks_nearest(self):
        bench = _bench()
        assert bench.associate_strongest("lap-1") == "ext-1"
        assert bench.associate_strongest("lap-2") == "ext-2"

    def test_unpowered_extender_not_joinable(self):
        bench = _bench()
        bench.unplug_extender("ext-1")
        with pytest.raises(ValueError):
            bench.associate("lap-1", "ext-1")
        # associate_strongest falls back to the powered one.
        assert bench.associate_strongest("lap-1") == "ext-2"

    def test_scan_reports_only_powered(self):
        bench = _bench()
        bench.unplug_extender("ext-2")
        scan = bench.scan("lap-1")
        assert set(scan) == {"ext-1"}
        assert scan["ext-1"] > 0


class TestIperf:
    def test_wifi_client_measures_concatenated_link(self):
        bench = _bench()
        bench.associate("lap-1", "ext-1")
        tput = bench.iperf_throughput("lap-1")
        wifi_rate = bench.wifi_rate("lap-1", "ext-1")
        assert tput <= min(wifi_rate, 100.0) + 1e-6

    def test_wired_client_measures_plc_only(self):
        bench = _bench()
        bench.wire("lap-1", "ext-1")
        assert bench.iperf_throughput("lap-1") == pytest.approx(100.0)

    def test_two_wired_clients_time_share(self):
        bench = _bench()
        bench.wire("lap-1", "ext-1")
        bench.wire("lap-2", "ext-2")
        samples = {s.laptop: s.throughput_mbps
                   for s in bench.run_iperf()}
        assert samples["lap-1"] == pytest.approx(50.0, rel=0.01)
        assert samples["lap-2"] == pytest.approx(25.0, rel=0.01)

    def test_noise_perturbs_measurements(self):
        noisy = _bench(noise=0.05)
        noisy.wire("lap-1", "ext-1")
        values = {noisy.iperf_throughput("lap-1") for _ in range(5)}
        assert len(values) > 1

    def test_disconnected_laptop_not_measured(self):
        bench = _bench()
        bench.wire("lap-1", "ext-1")
        with pytest.raises(KeyError):
            bench.iperf_throughput("lap-2")

    def test_invalid_duration(self):
        bench = _bench()
        with pytest.raises(ValueError):
            bench.run_iperf(duration_s=0.0)

    def test_unplugged_extender_drops_clients(self):
        bench = _bench()
        bench.wire("lap-1", "ext-1")
        bench.unplug_extender("ext-1")
        assert bench.run_iperf() == []


class TestCalibration:
    def test_sample_range(self, rng):
        caps = sample_isolation_capacities(500, rng)
        assert np.all(caps >= 60.0) and np.all(caps <= 160.0)
        assert caps.std() > 5.0

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_isolation_capacities(0, rng)
        with pytest.raises(ValueError):
            sample_isolation_capacities(5, rng, low_mbps=100.0,
                                        high_mbps=50.0)


class TestMeasurementStudies:
    def test_wifi_sharing_reproduces_anomaly(self):
        result = wifi_sharing_study(rng=np.random.default_rng(0))
        assert result.user1_mbps[0] > result.user1_mbps[-1]
        assert result.user2_mbps[0] > result.user2_mbps[-1]
        for u1, u2 in zip(result.user1_mbps, result.user2_mbps):
            assert u1 == pytest.approx(u2, rel=0.15)

    def test_isolation_study_matches_calibration(self):
        result = plc_isolation_study(rng=np.random.default_rng(0))
        for measured, expected in zip(result.isolation_mbps,
                                      FIG2B_ISOLATION_MBPS):
            assert measured == pytest.approx(expected, rel=0.1)

    def test_sharing_study_one_over_k(self):
        result = plc_sharing_study(rng=np.random.default_rng(0))
        for k in (2, 3, 4):
            for ratio in result.share_ratio(k):
                assert ratio == pytest.approx(1.0 / k, rel=0.12)

    def test_sharing_study_bounds_checked(self):
        with pytest.raises(ValueError):
            plc_sharing_study(capacities=(60.0,), active_counts=(2,))
