"""Tests for the enterprise floor-plan topology generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Scenario
from repro.net.topology import (FloorPlan, build_scenario,
                                enterprise_floor, sample_user_positions)
from repro.plc.channel import random_building
from repro.wifi.phy import WifiPhy


def _plan(n_ext=3, n_users=5, rng=None) -> FloorPlan:
    rng = rng or np.random.default_rng(0)
    return FloorPlan(width_m=100.0, height_m=100.0,
                     extender_xy=rng.uniform(0, 100, (n_ext, 2)),
                     user_xy=rng.uniform(0, 100, (n_users, 2)),
                     plc_rates=rng.uniform(60, 160, n_ext))


class TestFloorPlan:
    def test_counts(self):
        plan = _plan(4, 7)
        assert plan.n_extenders == 4
        assert plan.n_users == 7

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FloorPlan(width_m=0.0, height_m=100.0,
                      extender_xy=np.zeros((1, 2)),
                      user_xy=np.zeros((0, 2)),
                      plc_rates=np.ones(1))

    def test_rate_count_mismatch(self):
        with pytest.raises(ValueError):
            FloorPlan(width_m=10.0, height_m=10.0,
                      extender_xy=np.zeros((2, 2)),
                      user_xy=np.zeros((0, 2)),
                      plc_rates=np.ones(3))

    def test_with_users_replaces_population(self):
        plan = _plan(3, 5)
        grown = plan.with_users(np.zeros((9, 2)))
        assert grown.n_users == 9
        assert grown.n_extenders == 3
        assert plan.n_users == 5  # original untouched


class TestSampleUserPositions:
    def test_within_bounds(self, rng):
        xy = sample_user_positions(200, 50.0, 30.0, rng)
        assert xy.shape == (200, 2)
        assert np.all(xy[:, 0] >= 0) and np.all(xy[:, 0] <= 50.0)
        assert np.all(xy[:, 1] >= 0) and np.all(xy[:, 1] <= 30.0)

    def test_zero_users(self, rng):
        assert sample_user_positions(0, 10.0, 10.0, rng).shape == (0, 2)

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_user_positions(-1, 10.0, 10.0, rng)


class TestBuildScenario:
    def test_rates_follow_distance(self):
        plan = FloorPlan(width_m=100.0, height_m=100.0,
                         extender_xy=np.array([[0.0, 0.0]]),
                         user_xy=np.array([[1.0, 0.0], [90.0, 0.0]]),
                         plc_rates=np.array([100.0]))
        scenario = build_scenario(plan)
        assert scenario.wifi_rates[0, 0] > scenario.wifi_rates[1, 0]

    def test_out_of_range_user_rescued(self):
        """A user beyond every extender's range still gets attached at
        the lowest MCS (ensure_reachable)."""
        phy = WifiPhy()
        far = phy.max_range_m() * 3
        plan = FloorPlan(width_m=far * 2, height_m=far * 2,
                         extender_xy=np.array([[0.0, 0.0]]),
                         user_xy=np.array([[far, far]]),
                         plc_rates=np.array([100.0]))
        scenario = build_scenario(plan, phy=phy)
        assert scenario.wifi_rates[0, 0] == pytest.approx(
            phy.mcs_table[0][1] * phy.spatial_streams)

    def test_rescue_can_be_disabled(self):
        phy = WifiPhy()
        far = phy.max_range_m() * 3
        plan = FloorPlan(width_m=far * 2, height_m=far * 2,
                         extender_xy=np.array([[0.0, 0.0]]),
                         user_xy=np.array([[far, far]]),
                         plc_rates=np.array([100.0]))
        scenario = build_scenario(plan, phy=phy, ensure_reachable=False)
        assert scenario.wifi_rates[0, 0] == 0.0

    def test_user_ids_assigned(self):
        scenario = build_scenario(_plan(2, 4))
        assert scenario.user_ids.tolist() == [0, 1, 2, 3]


class TestEnterpriseFloor:
    def test_paper_scale(self, rng):
        scenario = enterprise_floor(15, 36, rng)
        assert isinstance(scenario, Scenario)
        assert scenario.n_extenders == 15
        assert scenario.n_users == 36
        # Every user is attachable somewhere.
        for i in range(36):
            assert len(scenario.reachable(i)) > 0

    def test_deterministic(self):
        a = enterprise_floor(5, 10, np.random.default_rng(3))
        b = enterprise_floor(5, 10, np.random.default_rng(3))
        assert np.allclose(a.wifi_rates, b.wifi_rates)
        assert np.allclose(a.plc_rates, b.plc_rates)

    def test_prebuilt_building(self, rng):
        building = random_building(20, rng)
        scenario = enterprise_floor(8, 12, rng, building=building)
        assert scenario.n_extenders == 8

    def test_too_few_outlets_rejected(self, rng):
        building = random_building(3, rng)
        with pytest.raises(ValueError, match="outlets"):
            enterprise_floor(8, 12, rng, building=building)

    def test_invalid_extender_count(self, rng):
        with pytest.raises(ValueError):
            enterprise_floor(0, 5, rng)

    @given(st.integers(1, 10), st.integers(0, 30),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_shapes_always_consistent(self, n_ext, n_users, seed):
        scenario = enterprise_floor(n_ext, n_users,
                                    np.random.default_rng(seed))
        assert scenario.wifi_rates.shape == (n_users, n_ext)
        assert scenario.plc_rates.shape == (n_ext,)
