"""Tests for trace recording and replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.problem import Scenario
from repro.sim.dynamics import EpochStats
from repro.sim.trace import (load_history, load_scenario, save_history,
                             save_scenario)

from .conftest import random_scenario


def _epoch(i: int) -> EpochStats:
    return EpochStats(epoch=i, n_users=10 * i, arrivals=5, departures=2,
                      reassignments=3, aggregate_throughput=100.0 + i,
                      jain_fairness=0.7)


class TestHistoryRoundTrip:
    def test_round_trip(self, tmp_path):
        histories = {"wolt": [_epoch(1), _epoch(2)], "greedy": [_epoch(1)]}
        path = tmp_path / "trace.json"
        save_history(path, histories)
        loaded = load_history(path)
        assert loaded == histories

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "kind": "scenario"}))
        with pytest.raises(ValueError, match="epoch-history"):
            load_history(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "kind":
                                    "epoch-history", "policies": {}}))
        with pytest.raises(ValueError, match="version"):
            load_history(path)

    def test_from_real_simulation(self, tmp_path):
        from repro.sim.runner import run_online_comparison

        histories = run_online_comparison(1, 3, 4, seed=0)
        path = tmp_path / "sim.json"
        save_history(path, histories)
        loaded = load_history(path)
        assert loaded == {k: list(v) for k, v in histories.items()}


class TestScenarioRoundTrip:
    def test_round_trip_minimal(self, tmp_path, rng):
        scenario = random_scenario(rng, 5, 3)
        path = tmp_path / "scenario.json"
        save_scenario(path, scenario)
        loaded = load_scenario(path)
        assert np.allclose(loaded.wifi_rates, scenario.wifi_rates)
        assert np.allclose(loaded.plc_rates, scenario.plc_rates)
        assert loaded.capacities is None

    def test_round_trip_full(self, tmp_path):
        scenario = Scenario(wifi_rates=np.ones((2, 2)),
                            plc_rates=np.array([5.0, 6.0]),
                            capacities=[1, 2],
                            user_ids=np.array([10, 20]))
        path = tmp_path / "scenario.json"
        save_scenario(path, scenario)
        loaded = load_scenario(path)
        assert loaded.capacities.tolist() == [1, 2]
        assert loaded.user_ids.tolist() == [10, 20]

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1,
                                    "kind": "epoch-history"}))
        with pytest.raises(ValueError, match="scenario"):
            load_scenario(path)

    def test_loaded_scenario_is_solvable(self, tmp_path, rng):
        from repro.core.wolt import solve_wolt

        scenario = random_scenario(rng, 6, 3)
        path = tmp_path / "scenario.json"
        save_scenario(path, scenario)
        result = solve_wolt(load_scenario(path))
        reference = solve_wolt(scenario)
        assert result.assignment.tolist() == reference.assignment.tolist()
