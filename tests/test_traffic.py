"""Tests for the fluid traffic models (saturated and demand-limited)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Scenario, UNASSIGNED
from repro.net.engine import evaluate
from repro.sim.traffic import (delivered_bytes, evaluate_with_demands)

from .conftest import random_scenario


class TestDeliveredBytes:
    def test_unit_conversion(self):
        # 8 Mbps for 10 s = 10 MB.
        out = delivered_bytes([8.0], 10.0)
        assert out[0] == pytest.approx(10e6)

    def test_zero_duration(self):
        assert delivered_bytes([100.0], 0.0)[0] == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            delivered_bytes([1.0], -1.0)
        with pytest.raises(ValueError):
            delivered_bytes([-1.0], 1.0)


class TestEvaluateWithDemands:
    def test_saturated_matches_engine(self, rng):
        """With infinite demands, the demand model reduces to evaluate()."""
        sc = random_scenario(rng, 8, 3)
        assignment = rng.integers(0, 3, size=8)
        demands = np.full(8, np.inf)
        demand_report = evaluate_with_demands(sc, assignment, demands)
        engine_report = evaluate(sc, assignment)
        assert demand_report.aggregate == pytest.approx(
            engine_report.aggregate, rel=1e-6)

    def test_tiny_demands_fully_satisfied(self, rng):
        sc = random_scenario(rng, 6, 3)
        assignment = rng.integers(0, 3, size=6)
        demands = np.full(6, 0.5)  # 0.5 Mbps each: trivially served
        report = evaluate_with_demands(sc, assignment, demands)
        assert np.all(report.satisfied)
        assert report.user_throughputs == pytest.approx(demands)

    def test_demand_caps_respected(self, rng):
        sc = random_scenario(rng, 10, 4)
        assignment = rng.integers(0, 4, size=10)
        demands = rng.uniform(1.0, 50.0, 10)
        report = evaluate_with_demands(sc, assignment, demands)
        assert np.all(report.user_throughputs <= demands + 1e-6)

    def test_small_flows_survive_bottleneck(self):
        """TCP max-min: an audio stream keeps its 2 Mbps even when a big
        flow saturates the shared PLC link."""
        sc = Scenario(wifi_rates=np.array([[100.0], [100.0]]),
                      plc_rates=np.array([20.0]))
        report = evaluate_with_demands(sc, [0, 0], [2.0, 1000.0])
        assert report.user_throughputs[0] == pytest.approx(2.0, abs=0.1)
        assert report.user_throughputs[1] == pytest.approx(18.0, abs=0.5)
        assert report.satisfied.tolist() == [True, False]

    def test_offline_user_gets_nothing(self, rng):
        sc = random_scenario(rng, 3, 2)
        report = evaluate_with_demands(sc, [0, UNASSIGNED, 1],
                                       [10.0, 10.0, 10.0])
        assert report.user_throughputs[1] == 0.0
        assert not report.satisfied[1]

    def test_shape_mismatch_rejected(self, rng):
        sc = random_scenario(rng, 3, 2)
        with pytest.raises(ValueError):
            evaluate_with_demands(sc, [0, 0, 1], [10.0])

    def test_negative_demand_rejected(self, rng):
        sc = random_scenario(rng, 2, 2)
        with pytest.raises(ValueError):
            evaluate_with_demands(sc, [0, 1], [-1.0, 5.0])

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_physical_feasibility(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        demands = rng.uniform(0.0, 100.0, n_users)
        report = evaluate_with_demands(sc, assignment, demands)
        # Never more than demand, never negative.
        assert np.all(report.user_throughputs <= demands + 1e-6)
        assert np.all(report.user_throughputs >= -1e-9)
        # PLC medium time bounded.
        assert report.plc_time_shares.sum() <= 1.0 + 1e-9
        # Aggregate consistency.
        assert report.user_throughputs.sum() == pytest.approx(
            report.extender_throughputs.sum(), rel=1e-4, abs=1e-6)

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_bounded_by_demand_and_capacity(self, n_users,
                                                      n_ext, seed):
        """Capped aggregate never exceeds total demand nor the best
        physical rate available.

        Note it CAN exceed the saturated-traffic aggregate: a
        demand-limited slow user frees airtime that a fast user recycles
        (the 802.11 anomaly only binds among saturated stations).
        """
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        demands = rng.uniform(0.0, 100.0, n_users)
        capped = evaluate_with_demands(sc, assignment, demands)
        assert capped.aggregate <= demands.sum() + 1e-6
        assert capped.aggregate <= max(sc.wifi_rates.max(),
                                       sc.plc_rates.max()) * n_ext
