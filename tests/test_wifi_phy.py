"""Tests for the 802.11 PHY / propagation model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wifi.phy import MCS_TABLE_80211N_20MHZ, WifiPhy


class TestPathLoss:
    def test_reference_distance(self):
        phy = WifiPhy()
        assert phy.path_loss_db(1.0) == pytest.approx(
            phy.reference_loss_db)

    def test_sub_metre_clamps_to_reference(self):
        phy = WifiPhy()
        assert phy.path_loss_db(0.1) == phy.path_loss_db(1.0)

    def test_log_distance_slope(self):
        phy = WifiPhy(path_loss_exponent=3.5)
        per_decade = phy.path_loss_db(100.0) - phy.path_loss_db(10.0)
        assert per_decade == pytest.approx(35.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            WifiPhy().path_loss_db(-1.0)

    def test_shadowing_requires_rng(self):
        phy = WifiPhy(shadowing_sigma_db=8.0)
        # Without an rng, shadowing is off (deterministic).
        assert phy.path_loss_db(10.0) == phy.path_loss_db(10.0)
        rng = np.random.default_rng(0)
        draws = {phy.path_loss_db(10.0, rng) for _ in range(5)}
        assert len(draws) > 1

    @given(st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=100)
    def test_monotone_in_distance(self, d1, d2):
        phy = WifiPhy()
        if d1 < d2:
            assert phy.path_loss_db(d1) <= phy.path_loss_db(d2)
        else:
            assert phy.path_loss_db(d1) >= phy.path_loss_db(d2)


class TestRateSelection:
    def test_rate_at_contact_is_top_mcs(self):
        phy = WifiPhy()
        top_rate = phy.mcs_table[-1][1] * phy.spatial_streams
        assert phy.rate_at_distance(1.0) == pytest.approx(top_rate)

    def test_rate_beyond_range_is_zero(self):
        phy = WifiPhy()
        assert phy.rate_at_distance(phy.max_range_m() * 2) == 0.0

    def test_rate_for_snr_ladder(self):
        phy = WifiPhy(spatial_streams=1)
        for threshold, rate in MCS_TABLE_80211N_20MHZ:
            assert phy.rate_for_snr(threshold) == pytest.approx(rate)
            assert phy.rate_for_snr(threshold - 0.5) < rate

    def test_below_lowest_threshold(self):
        phy = WifiPhy(spatial_streams=1)
        lowest_snr = MCS_TABLE_80211N_20MHZ[0][0]
        assert phy.rate_for_snr(lowest_snr - 1.0) == 0.0

    def test_spatial_streams_scale_rates(self):
        one = WifiPhy(spatial_streams=1)
        two = WifiPhy(spatial_streams=2)
        assert two.rate_at_distance(5.0) == pytest.approx(
            2 * one.rate_at_distance(5.0))

    def test_rssi_and_snr_consistency(self):
        phy = WifiPhy()
        d = 20.0
        assert phy.snr_db(d) == pytest.approx(
            phy.rssi_dbm(d) - phy.noise_floor_dbm)

    def test_max_range_decodes_lowest_mcs(self):
        phy = WifiPhy()
        edge = phy.max_range_m()
        assert phy.rate_at_distance(edge * 0.99) > 0.0
        assert phy.rate_at_distance(edge * 1.01) == 0.0

    @given(st.floats(min_value=0.0, max_value=300.0),
           st.floats(min_value=0.0, max_value=300.0))
    @settings(max_examples=100)
    def test_rate_monotone_non_increasing(self, d1, d2):
        phy = WifiPhy()
        lo, hi = sorted((d1, d2))
        assert phy.rate_at_distance(lo) >= phy.rate_at_distance(hi)


class TestRateMatrix:
    def test_shape_and_symmetry(self):
        phy = WifiPhy()
        users = np.array([[0.0, 0.0], [10.0, 0.0]])
        exts = np.array([[0.0, 0.0], [10.0, 0.0], [50.0, 50.0]])
        m = phy.rate_matrix(users, exts)
        assert m.shape == (2, 3)
        # Mirror geometry gives mirror rates.
        assert m[0, 0] == m[1, 1]
        assert m[0, 1] == m[1, 0]

    def test_colocation_gives_top_rate(self):
        phy = WifiPhy()
        m = phy.rate_matrix(np.array([[5.0, 5.0]]),
                            np.array([[5.0, 5.0]]))
        assert m[0, 0] == pytest.approx(
            phy.mcs_table[-1][1] * phy.spatial_streams)

    def test_bad_shapes_rejected(self):
        phy = WifiPhy()
        with pytest.raises(ValueError):
            phy.rate_matrix(np.ones((2, 3)), np.ones((2, 2)))


class TestValidation:
    def test_invalid_spatial_streams(self):
        with pytest.raises(ValueError):
            WifiPhy(spatial_streams=0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            WifiPhy(path_loss_exponent=0.0)

    def test_unsorted_mcs_table(self):
        with pytest.raises(ValueError):
            WifiPhy(mcs_table=((10.0, 6.5), (5.0, 13.0)))
