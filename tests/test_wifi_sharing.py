"""Unit and property tests for the 802.11 throughput-fair sharing law."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wifi.sharing import (anomaly_ratio, cell_throughput,
                                cell_throughputs, per_user_throughput)

positive_rates = st.lists(st.floats(min_value=0.5, max_value=600.0),
                          min_size=1, max_size=20)


class TestCellThroughput:
    def test_single_user_gets_its_rate(self):
        assert cell_throughput([54.0]) == pytest.approx(54.0)

    def test_equal_rates_share_perfectly(self):
        assert cell_throughput([54.0, 54.0]) == pytest.approx(54.0)

    def test_empty_cell_is_idle(self):
        assert cell_throughput([]) == 0.0

    def test_fig2a_performance_anomaly(self):
        """A slow joiner drags the whole cell down (Heusse et al.)."""
        fast_alone = cell_throughput([54.0])
        with_slow = cell_throughput([54.0, 6.0])
        assert with_slow < fast_alone
        # Each user gets the harmonic-mean-limited equal share.
        per_user = per_user_throughput([54.0, 6.0])
        assert per_user == pytest.approx(1.0 / (1 / 54 + 1 / 6))
        assert per_user < 6.0  # even below the slow user's own rate? no:
        # 1/(1/54+1/6) = 5.4 < 6 — the fast user is dragged under the slow
        # user's PHY rate, the signature of the anomaly.

    def test_anomaly_worsens_with_distance(self):
        """Moving user 2 further (L1 -> L2 -> L3) hurts both users."""
        shares = [per_user_throughput([54.0, slow])
                  for slow in (54.0, 18.0, 6.0)]
        assert shares[0] > shares[1] > shares[2]

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            cell_throughput([54.0, 0.0])
        with pytest.raises(ValueError):
            cell_throughput([-5.0])

    @given(positive_rates)
    @settings(max_examples=200)
    def test_between_min_and_max_rate(self, rates):
        t = cell_throughput(rates)
        assert min(rates) - 1e-9 <= t <= max(rates) + 1e-9

    @given(positive_rates)
    @settings(max_examples=200)
    def test_equals_count_over_total_airtime(self, rates):
        """Eq. (1) literally."""
        t = cell_throughput(rates)
        expected = len(rates) / sum(1.0 / r for r in rates)
        assert t == pytest.approx(expected)

    @given(positive_rates, st.floats(min_value=0.5, max_value=600.0))
    @settings(max_examples=200)
    def test_adding_below_average_user_lemma1(self, rates, new_rate):
        """Lemma 1: joining with 1/r <= avg(1/r) never lowers T_WiFi."""
        inv_avg = np.mean([1.0 / r for r in rates])
        before = cell_throughput(rates)
        after = cell_throughput(rates + [new_rate])
        if 1.0 / new_rate <= inv_avg:
            assert after >= before - 1e-9
        else:
            assert after <= before + 1e-9

    @given(positive_rates)
    @settings(max_examples=100)
    def test_per_user_share_is_equal_split(self, rates):
        assert per_user_throughput(rates) == pytest.approx(
            cell_throughput(rates) / len(rates))


class TestCellThroughputs:
    def test_vectorized_matches_scalar(self):
        wifi = np.array([[50.0, 20.0], [30.0, 10.0], [40.0, 60.0]])
        assign = [0, 0, 1]
        out = cell_throughputs(wifi, assign, 2)
        assert out[0] == pytest.approx(cell_throughput([50.0, 30.0]))
        assert out[1] == pytest.approx(cell_throughput([60.0]))

    def test_unassigned_users_ignored(self):
        wifi = np.array([[50.0], [30.0]])
        out = cell_throughputs(wifi, [-1, 0], 1)
        assert out[0] == pytest.approx(30.0)

    def test_empty_extender_is_zero(self):
        wifi = np.array([[50.0, 20.0]])
        out = cell_throughputs(wifi, [0], 2)
        assert out[1] == 0.0

    def test_zero_rate_assignment_rejected(self):
        wifi = np.array([[0.0, 20.0]])
        with pytest.raises(ValueError):
            cell_throughputs(wifi, [0], 2)

    def test_length_mismatch_rejected(self):
        wifi = np.array([[50.0]])
        with pytest.raises(ValueError):
            cell_throughputs(wifi, [0, 0], 1)


class TestAnomalyRatio:
    def test_equal_rates_halve(self):
        assert anomaly_ratio(54.0, 54.0) == pytest.approx(0.5)

    def test_slow_peer_dominates(self):
        assert anomaly_ratio(54.0, 6.0) == pytest.approx(
            (1.0 / (1 / 54 + 1 / 6)) / 54.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            anomaly_ratio(0.0, 6.0)
        with pytest.raises(ValueError):
            anomaly_ratio(54.0, -1.0)

    @given(st.floats(min_value=0.5, max_value=600.0),
           st.floats(min_value=0.5, max_value=600.0))
    @settings(max_examples=100)
    def test_ratio_bounded(self, fast, slow):
        ratio = anomaly_ratio(fast, slow)
        assert 0.0 < ratio <= 0.5 + 1e-9 or slow > fast
        assert ratio <= 1.0
