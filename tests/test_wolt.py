"""Tests for the complete WOLT algorithm (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import greedy_assignment, rssi_assignment
from repro.core.optimal import brute_force_optimal
from repro.core.problem import UNASSIGNED
from repro.core.wolt import solve_wolt
from repro.net.engine import evaluate

from .conftest import random_scenario


class TestFig3:
    def test_wolt_finds_the_optimum(self, fig3_scenario):
        res = solve_wolt(fig3_scenario)
        assert res.assignment.tolist() == [1, 0]
        assert res.aggregate_throughput == pytest.approx(40.0)

    def test_wolt_beats_both_baselines(self, fig3_scenario):
        wolt = solve_wolt(fig3_scenario).aggregate_throughput
        rssi = evaluate(fig3_scenario,
                        rssi_assignment(fig3_scenario)).aggregate
        greedy = evaluate(fig3_scenario,
                          greedy_assignment(fig3_scenario)).aggregate
        assert wolt > greedy > rssi


class TestAlgorithmContract:
    def test_complete_assignment(self, rng):
        sc = random_scenario(rng, 25, 6)
        res = solve_wolt(sc)
        assert np.all(res.assignment != UNASSIGNED)

    def test_anchors_are_phase1_users(self, rng):
        sc = random_scenario(rng, 25, 6)
        res = solve_wolt(sc)
        assert res.anchored_users.tolist() == \
            res.phase1.anchored_users.tolist()
        for user in res.anchored_users:
            assert res.assignment[user] == res.phase1.assignment[user]

    def test_report_matches_assignment(self, rng):
        sc = random_scenario(rng, 15, 4)
        res = solve_wolt(sc)
        ref = evaluate(sc, res.assignment, require_complete=True)
        assert res.aggregate_throughput == pytest.approx(ref.aggregate)

    def test_continuous_phase2_variant(self, rng):
        sc = random_scenario(rng, 10, 3)
        res = solve_wolt(sc, phase2_solver="continuous", rng=rng)
        assert np.all(res.assignment != UNASSIGNED)

    def test_unknown_solver_rejected(self, fig3_scenario):
        with pytest.raises(ValueError, match="unknown phase2_solver"):
            solve_wolt(fig3_scenario, phase2_solver="magic")

    def test_deterministic(self, rng):
        sc = random_scenario(rng, 20, 5)
        a = solve_wolt(sc).assignment
        b = solve_wolt(sc).assignment
        assert a.tolist() == b.tolist()

    @given(st.integers(3, 8), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_and_tracks_optimal(self, n_users, n_ext, seed):
        """WOLT is a heuristic for an NP-hard problem (Theorem 1).

        It must never beat the certified optimum, and on tiny dense
        instances it can drop below 0.5x (observed 0.49x at 8 users on
        2 extenders: Phase I pins one user per extender; Phase II
        ignores the PLC side by design).  The paper only claims
        optimality on the Fig. 3 study; its headline claims are
        against Greedy/RSSI at scale.
        """
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        wolt = solve_wolt(sc).aggregate_throughput
        opt = brute_force_optimal(sc).aggregate_throughput
        assert wolt <= opt + 1e-6
        assert wolt >= 0.45 * opt

    def test_mean_optimality_over_many_seeds(self):
        """Mean WOLT/optimal ratio stays above 0.8 on small instances."""
        ratios = []
        for seed in range(60):
            rng = np.random.default_rng(seed)
            sc = random_scenario(rng, int(rng.integers(3, 8)),
                                 int(rng.integers(2, 4)))
            wolt = solve_wolt(sc).aggregate_throughput
            opt = brute_force_optimal(sc).aggregate_throughput
            ratios.append(wolt / opt)
        assert np.mean(ratios) > 0.8

    @given(st.integers(4, 15), st.integers(2, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_wolt_capacity_feasible(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext, capacities=True)
        if int(sc.capacities.sum()) < n_users:
            return  # infeasible instance, not WOLT's contract
        res = solve_wolt(sc)
        counts = np.bincount(res.assignment, minlength=n_ext)
        assert np.all(counts <= sc.capacities)
