"""Tests for the content-hash lint cache, SARIF export, and autofixer."""

from __future__ import annotations

import json
import textwrap
import time
from pathlib import Path
from typing import List, Optional

import pytest

from tools.woltlint.analyzer import analyze_sources
from tools.woltlint.cache import LintCache, tool_salt
from tools.woltlint.findings import Finding, WrapFix
from tools.woltlint.fixers import apply_wrap_fixes
from tools.woltlint.sarif import SARIF_SCHEMA_URI, to_sarif

REPO = Path(__file__).resolve().parent.parent

CLEAN = "def f(x):\n    return x + 1\n"
# One W001 finding (unseeded default_rng).
DIRTY = textwrap.dedent("""
    import numpy as np

    def f():
        rng = np.random.default_rng()
        return rng.random()
""")


def run(sources, cache: Optional[LintCache]) -> List[Finding]:
    return analyze_sources(sources, cache=cache)


class TestLintCache:
    def make(self, tmp_path: Path) -> LintCache:
        return LintCache(str(tmp_path / "cache.json"), tool_salt())

    def test_warm_run_matches_cold_run(self, tmp_path):
        sources = [("src/pkg/a.py", DIRTY), ("src/pkg/b.py", CLEAN)]
        cache = self.make(tmp_path)
        cold = run(sources, cache)
        warm = run(sources, self.make(tmp_path))
        assert cold == warm
        assert [f.rule for f in cold] == ["W001"]

    def test_edited_file_invalidates_only_that_file(self, tmp_path):
        cache = self.make(tmp_path)
        run([("src/pkg/a.py", CLEAN)], cache)
        # Same path, new content: the stale entry must not be served.
        findings = run([("src/pkg/a.py", DIRTY)], self.make(tmp_path))
        assert [f.rule for f in findings] == ["W001"]

    def test_salt_change_invalidates_everything(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = LintCache(path, "salt-one")
        h = cache.content_hash(CLEAN)
        cache.set_file("a.py", h, [])
        cache.save()
        reloaded = LintCache(path, "salt-two")
        assert reloaded.get_file("a.py", h) is None

    def test_select_changes_the_salt(self):
        assert tool_salt() != tool_salt(select=["W001"])
        assert tool_salt() != tool_salt(ignore=["W013"])

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json at all")
        findings = run([("src/pkg/a.py", DIRTY)],
                       LintCache(str(path), tool_salt()))
        assert [f.rule for f in findings] == ["W001"]

    def test_unwritable_cache_is_not_fatal(self, tmp_path):
        missing_parent = tmp_path / ("deep/" * 40) / "cache.json"
        cache = LintCache(str(missing_parent), tool_salt())
        findings = run([("src/pkg/a.py", DIRTY)], cache)
        assert [f.rule for f in findings] == ["W001"]

    def test_vanished_files_pruned_on_save(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = LintCache(path, tool_salt())
        h = cache.content_hash(CLEAN)
        cache.set_file("gone.py", h, [])
        cache.set_file("kept.py", h, [])
        cache.save(analyzed_paths=["kept.py"])
        data = json.loads(Path(path).read_text())
        assert "kept.py" in data["files"]
        assert "gone.py" not in data["files"]

    def test_findings_round_trip_through_cache(self, tmp_path):
        # Including the fix payload, which to_json() deliberately
        # omits from human/json report output.
        sources = [("src/pkg/a.py", textwrap.dedent("""
            def collect(pending):
                results = []
                for name in set(pending):
                    results.append(name)
                return results
        """))]
        cache = self.make(tmp_path)
        cold = run(sources, cache)
        warm = run(sources, self.make(tmp_path))
        assert [f.fix for f in cold] == [f.fix for f in warm]
        assert warm[0].fix is not None


class TestWarmCachePerformance:
    def test_warm_full_tree_under_five_seconds(self, tmp_path):
        paths = sorted(str(p) for d in ("src", "tests", "tools",
                                        "benchmarks")
                       for p in (REPO / d).rglob("*.py"))
        sources = [(p, Path(p).read_text()) for p in paths]
        salt = tool_salt()
        cache_file = str(tmp_path / "cache.json")
        run(sources, LintCache(cache_file, salt))  # cold fill
        t0 = time.monotonic()
        run(sources, LintCache(cache_file, salt))
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0, f"warm full-tree pass took {elapsed:.2f}s"


class TestSarif:
    def findings(self) -> List[Finding]:
        return analyze_sources([("src/pkg/a.py", DIRTY)])

    def test_structure_and_result_fields(self):
        doc = to_sarif(self.findings(), tool_version="2.0.0")
        assert doc["version"] == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (sarif_run,) = doc["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "woltlint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "W001" in rule_ids and "E001" in rule_ids
        (result,) = sarif_run["results"]
        assert result["ruleId"] == "W001"
        assert rule_ids[result["ruleIndex"]] == "W001"
        (loc,) = result["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert phys["region"]["startLine"] == self.findings()[0].line
        # SARIF columns are 1-based; Finding columns are 0-based.
        assert phys["region"]["startColumn"] == \
            self.findings()[0].col + 1

    def test_validates_against_bundled_schema_subset(self):
        # The full OASIS schema cannot be vendored wholesale; the
        # bundled subset copies its constraints for every construct
        # woltlint emits (see the schema file's description).
        jsonschema = pytest.importorskip("jsonschema")
        schema_path = REPO / "tools" / "woltlint" / "testdata" / \
            "sarif-schema-2.1.0-subset.json"
        schema = json.loads(schema_path.read_text())
        doc = to_sarif(self.findings(), tool_version="2.0.0")
        jsonschema.validate(doc, schema)

    def test_empty_findings_still_valid_run(self):
        doc = to_sarif([], tool_version="2.0.0")
        assert doc["runs"][0]["results"] == []


class TestWrapFixer:
    def test_single_fix_applies(self):
        src = "for name in set(pending):\n    pass\n"
        fix = WrapFix(start_line=1, start_col=12, end_line=1,
                      end_col=24, before="sorted(", after=")")
        out, applied = apply_wrap_fixes(src, [fix])
        assert applied == 1
        assert out.startswith("for name in sorted(set(pending)):")

    def test_multiple_fixes_apply_bottom_up(self):
        src = ("for a in set(xs):\n    pass\n"
               "for b in set(ys):\n    pass\n")
        fixes = [
            WrapFix(1, 9, 1, 16, "sorted(", ")"),
            WrapFix(3, 9, 3, 16, "sorted(", ")"),
        ]
        out, applied = apply_wrap_fixes(src, fixes)
        assert applied == 2
        assert out.count("sorted(set(") == 2

    def test_overlapping_fixes_apply_only_first(self):
        src = "x = set(ys)\n"
        fixes = [
            WrapFix(1, 4, 1, 11, "sorted(", ")"),
            WrapFix(1, 4, 1, 11, "list(", ")"),
        ]
        out, applied = apply_wrap_fixes(src, fixes)
        assert applied == 1
        assert out == "x = sorted(set(ys))\n"

    def test_stale_coordinates_are_skipped(self):
        src = "x = 1\n"
        fix = WrapFix(9, 0, 9, 5, "sorted(", ")")
        out, applied = apply_wrap_fixes(src, [fix])
        assert applied == 0
        assert out == src

    def test_fixed_w012_source_relints_clean(self):
        src = textwrap.dedent("""
            def collect(pending):
                results = []
                for name in set(pending):
                    results.append(name)
                return results
        """)
        findings = analyze_sources([("src/pkg/a.py", src)],
                                   select=["W012"])
        (finding,) = findings
        fixed, applied = apply_wrap_fixes(src, [finding.fix])
        assert applied == 1
        assert analyze_sources([("src/pkg/a.py", fixed)],
                               select=["W012"]) == []
