"""CLI, suppression, and baseline-ratchet tests for woltlint."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.woltlint import analyze_source
from tools.woltlint.baseline import Baseline, apply_baseline
from tools.woltlint.cli import main
from tools.woltlint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A file with one W001 violation (an unseeded generator).
VIOLATION = textwrap.dedent("""
    import numpy as np

    rng = np.random.default_rng()
""")

#: The same file with a second, distinct violation added later.
VIOLATION_PLUS_ONE = VIOLATION + textwrap.dedent("""
    extra = np.random.default_rng()
""")


def make_tree(tmp_path: Path, source: str) -> Path:
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "module.py").write_text(source)
    return pkg


class TestSuppressions:
    def test_same_line_suppression(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()"
               "  # woltlint: disable=W001 — fixture\n")
        assert analyze_source(src, "m.py") == []

    def test_preceding_comment_suppression(self):
        src = ("import numpy as np\n"
               "# woltlint: disable=W001 — justification here\n"
               "rng = np.random.default_rng()\n")
        assert analyze_source(src, "m.py") == []

    def test_file_wide_suppression(self):
        src = ("# woltlint: disable-file=W001\n"
               "import numpy as np\n"
               "a = np.random.default_rng()\n"
               "b = np.random.default_rng()\n")
        assert analyze_source(src, "m.py") == []

    def test_suppression_is_per_rule(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()"
               "  # woltlint: disable=W002\n")
        assert [f.rule for f in analyze_source(src, "m.py")] == ["W001"]

    def test_suppression_only_covers_its_line(self):
        src = ("import numpy as np\n"
               "a = np.random.default_rng()"
               "  # woltlint: disable=W001\n"
               "b = np.random.default_rng()\n")
        findings = analyze_source(src, "m.py")
        assert [(f.rule, f.line) for f in findings] == [("W001", 3)]

    def test_trailing_comment_on_continuation_line(self):
        # The violation's reported line is the statement header, but
        # the suppression sits on a later physical line of the same
        # multi-line statement; it must still apply.
        src = textwrap.dedent("""
            import numpy as np

            rng = np.random.default_rng(
            )  # woltlint: disable=W001 — fixture
        """)
        assert analyze_source(src, "m.py") == []

    def test_multi_line_justification_block(self):
        # A standalone suppression followed by more comment lines must
        # cover the next *statement*, not the next comment line.
        src = textwrap.dedent("""
            import numpy as np

            # woltlint: disable=W001 — this generator intentionally
            # floats free: it seeds a demo fixture whose exact stream
            # is never asserted on.
            rng = np.random.default_rng()
        """)
        assert analyze_source(src, "m.py") == []

    def test_header_suppression_does_not_leak_into_body(self):
        # Suppressing on a compound statement's header covers the
        # header lines only, not the whole indented body.
        src = textwrap.dedent("""
            import numpy as np

            def f():  # woltlint: disable=W001
                return np.random.default_rng()
        """)
        findings = analyze_source(src, "m.py")
        assert [f.rule for f in findings] == ["W001"]


class TestBaselineRatchet:
    def test_grandfathered_finding_stays_silent(self):
        findings = [Finding("pkg/m.py", 3, 0, "W001", "msg")]
        baseline = Baseline.from_findings(findings)
        reported, grandfathered = apply_baseline(findings, baseline)
        assert reported == []
        assert grandfathered == 1

    def test_new_violation_in_same_file_reports_whole_group(self):
        old = [Finding("pkg/m.py", 3, 0, "W001", "msg")]
        baseline = Baseline.from_findings(old)
        grown = old + [Finding("pkg/m.py", 9, 0, "W001", "msg2")]
        reported, grandfathered = apply_baseline(grown, baseline)
        assert len(reported) == 2  # the old finding resurfaces too
        assert grandfathered == 0

    def test_other_rules_unaffected_by_grandfathering(self):
        baseline = Baseline.from_findings(
            [Finding("pkg/m.py", 3, 0, "W001", "msg")])
        findings = [Finding("pkg/m.py", 3, 0, "W001", "msg"),
                    Finding("pkg/m.py", 5, 0, "W004", "msg")]
        reported, grandfathered = apply_baseline(findings, baseline)
        assert [f.rule for f in reported] == ["W004"]
        assert grandfathered == 1

    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            [Finding("a.py", 1, 0, "W001", "m"),
             Finding("a.py", 2, 0, "W001", "m"),
             Finding("b.py", 1, 0, "W005", "m")])
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.counts == {"a.py::W001": 2, "b.py::W005": 1}

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestCli:
    def run(self, tmp_path, *argv):
        return main([str(tmp_path / "pkg"), "--root", str(tmp_path),
                     *argv])

    def test_violation_fails_without_baseline_file(self, tmp_path,
                                                   capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl)) == 1
        out = capsys.readouterr().out
        assert "pkg/module.py" in out and "W001" in out

    def test_update_then_grandfathered_run_is_green(self, tmp_path,
                                                    capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--update-baseline") == 0
        assert self.run(tmp_path, "--baseline", str(bl)) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_new_violation_still_fails_same_file(self, tmp_path,
                                                 capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--update-baseline") == 0
        make_tree(tmp_path, VIOLATION_PLUS_ONE)
        assert self.run(tmp_path, "--baseline", str(bl)) == 1
        out = capsys.readouterr().out
        assert out.count("W001") >= 2  # whole group resurfaces

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--update-baseline") == 0
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--no-baseline") == 1
        assert "W001" in capsys.readouterr().out

    def test_json_output_shape(self, tmp_path, capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["reported"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "W001"
        assert finding["path"] == "pkg/module.py"

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("W001", "W002", "W003", "W004", "W005", "W006"):
            assert code in out

    def test_select_and_ignore(self, tmp_path, capsys):
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--ignore", "W001") == 0
        assert self.run(tmp_path, "--baseline", str(bl),
                        "--select", "W002") == 0


#: A W012 violation the autofixer can rewrite (set iteration into an
#: accumulating list).
FIXABLE = textwrap.dedent("""
    def collect(pending):
        results = []
        for name in set(pending):
            results.append(name)
        return results
""")


class TestCliNewFlags:
    def run(self, tmp_path, *argv):
        return main([str(tmp_path / "pkg"), "--root", str(tmp_path),
                     "--baseline", str(tmp_path / "baseline.json"),
                     *argv])

    def test_sarif_format_to_stdout(self, tmp_path, capsys):
        make_tree(tmp_path, VIOLATION)
        assert self.run(tmp_path, "--format", "sarif") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "W001"

    def test_sarif_output_file(self, tmp_path):
        make_tree(tmp_path, VIOLATION)
        out = tmp_path / "report.sarif"
        assert self.run(tmp_path, "--format", "sarif",
                        "--output", str(out)) == 1
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "W001"

    def test_fix_rewrites_file_then_tree_is_clean(self, tmp_path,
                                                  capsys):
        pkg = make_tree(tmp_path, FIXABLE)
        assert self.run(tmp_path, "--fix") == 0
        fixed = (pkg / "module.py").read_text()
        assert "sorted(set(pending))" in fixed
        assert self.run(tmp_path) == 0

    def test_cache_file_round_trip(self, tmp_path, capsys):
        make_tree(tmp_path, VIOLATION)
        cache_file = tmp_path / "lintcache.json"
        argv = ["--cache-file", str(cache_file)]
        assert self.run(tmp_path, *argv) == 1
        assert cache_file.exists()
        capsys.readouterr()
        assert self.run(tmp_path, *argv) == 1  # warm hit, same verdict
        assert "W001" in capsys.readouterr().out


class TestBaselineRatchetEdgeCases:
    """Satellite: the ratchet under rule-set churn and growth."""

    def run(self, tmp_path, *argv):
        return main([str(tmp_path / "pkg"), "--root", str(tmp_path),
                     "--baseline", str(tmp_path / "baseline.json"),
                     *argv])

    def test_new_rule_with_zero_findings_keeps_green(self, tmp_path):
        # Adding a rule that the baselined tree already satisfies must
        # not dirty the gate or the baseline.
        make_tree(tmp_path, VIOLATION)
        assert self.run(tmp_path, "--update-baseline") == 0
        assert self.run(tmp_path) == 0
        baseline = Baseline.load(str(tmp_path / "baseline.json"))
        assert set(baseline.counts) == {"pkg/module.py::W001"}

    def test_entries_for_removed_rule_do_not_crash(self, tmp_path,
                                                   capsys):
        # A baseline carrying entries for a rule that no longer exists
        # (removed or renamed) must be tolerated on read...
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        bl.write_text(json.dumps({
            "version": 1,
            "entries": {"pkg/module.py::W001": 1,
                        "pkg/module.py::W099": 3},
        }))
        assert self.run(tmp_path) == 0

    def test_update_prunes_stale_entries_without_growth_refusal(
            self, tmp_path):
        # ...and --update-baseline prunes the stale keys; shrinkage is
        # never "growth", so no refusal and no flag needed.
        make_tree(tmp_path, VIOLATION)
        bl = tmp_path / "baseline.json"
        bl.write_text(json.dumps({
            "version": 1,
            "entries": {"pkg/module.py::W001": 1,
                        "pkg/module.py::W099": 3},
        }))
        assert self.run(tmp_path, "--update-baseline") == 0
        rewritten = Baseline.load(str(bl))
        assert rewritten.counts == {"pkg/module.py::W001": 1}

    def test_update_refuses_to_mask_new_findings(self, tmp_path,
                                                 capsys):
        make_tree(tmp_path, VIOLATION)
        assert self.run(tmp_path, "--update-baseline") == 0
        make_tree(tmp_path, VIOLATION_PLUS_ONE)
        assert self.run(tmp_path, "--update-baseline") == 2
        captured = capsys.readouterr()
        err = captured.out + captured.err
        assert "refusing" in err
        assert "pkg/module.py::W001" in err
        # The baseline on disk is untouched by the refused update.
        baseline = Baseline.load(str(tmp_path / "baseline.json"))
        assert baseline.counts == {"pkg/module.py::W001": 1}

    def test_explicit_growth_flag_overrides_refusal(self, tmp_path):
        make_tree(tmp_path, VIOLATION)
        assert self.run(tmp_path, "--update-baseline") == 0
        make_tree(tmp_path, VIOLATION_PLUS_ONE)
        assert self.run(tmp_path, "--update-baseline",
                        "--allow-baseline-growth") == 0
        baseline = Baseline.load(str(tmp_path / "baseline.json"))
        assert baseline.counts == {"pkg/module.py::W001": 2}
        assert self.run(tmp_path) == 0


class TestRealTree:
    """The PR gate: the shipped tree is clean under the shipped baseline."""

    def test_whole_tree_is_clean(self, capsys):
        argv = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "tools"),
                str(REPO_ROOT / "benchmarks"),
                "--root", str(REPO_ROOT)]
        assert main(argv) == 0

    def test_checked_in_baseline_is_empty(self):
        baseline = Baseline.load(
            str(REPO_ROOT / "tools" / "woltlint" / "baseline.json"))
        assert baseline.is_empty()
