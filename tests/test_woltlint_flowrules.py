"""True/false-positive tests for the flow-sensitive rules W010-W013.

Each rule gets at least one fixture that must fire (a real invariant
violation) and one that must stay silent (the disciplined version of
the same code).  The final class deliberately breaks two repo
invariants inside the *real* tree — an unfingerprinted ``_RunConfig``
field and a lambda handed to a pool — and asserts woltlint catches
both, which is the acceptance test for the project pass.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from tools.woltlint.analyzer import analyze_sources
from tools.woltlint.findings import Finding

REPO = Path(__file__).resolve().parent.parent


def lint(files: Dict[str, str], select: List[str]) -> List[Finding]:
    sources = [(path, textwrap.dedent(source))
               for path, source in sorted(files.items())]
    return analyze_sources(sources, select=select)


def codes(findings: List[Finding]) -> List[str]:
    return [f.rule for f in findings]


DRIVER = """
    from pkg.work import work_item

    def drive(pool, seeds):
        return [pool.submit(work_item, s) for s in seeds]
"""


class TestW010RngFlow:
    def test_raw_seed_in_worker_fires(self):
        findings = lint({
            "src/pkg/driver.py": DRIVER,
            "src/pkg/work.py": """
                import numpy as np

                def work_item(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
            """,
        }, select=["W010"])
        assert codes(findings) == ["W010"]
        assert "SeedSequence" in findings[0].message

    def test_spawned_seed_in_worker_is_clean(self):
        findings = lint({
            "src/pkg/driver.py": """
                import numpy as np
                from pkg.work import work_item

                def drive(pool, seed, n):
                    children = np.random.SeedSequence(seed).spawn(n)
                    return [pool.submit(work_item, c)
                            for c in children]
            """,
            "src/pkg/work.py": """
                import numpy as np

                def work_item(child_seq):
                    rng = np.random.default_rng(child_seq)
                    return rng.random()
            """,
        }, select=["W010"])
        assert findings == []

    def test_rng_captured_into_submit_fires(self):
        # Shipping a Generator across the pool boundary forks its
        # state into every worker.
        findings = lint({
            "src/pkg/m.py": """
                import numpy as np

                def work_item(rng):
                    return rng.random()

                def drive(pool, seed):
                    rng = np.random.default_rng(seed)
                    return pool.submit(work_item, rng)
            """,
        }, select=["W010"])
        assert "W010" in codes(findings)

    def test_raw_seed_outside_worker_is_not_w010(self):
        # A raw default_rng in single-process code is W001's business,
        # not the cross-module flow rule's.
        findings = lint({
            "src/pkg/m.py": """
                import numpy as np

                def local_only(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
            """,
        }, select=["W010"])
        assert findings == []


class TestW011ParallelSafety:
    def test_lambda_to_pool_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                def drive(pool, xs):
                    return [pool.submit(lambda x: x + 1, x)
                            for x in xs]
            """,
        }, select=["W011"])
        assert codes(findings) == ["W011"]
        assert "lambda" in findings[0].message.lower()

    def test_nested_function_to_pool_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                def drive(pool, xs):
                    def work(x):
                        return x + 1
                    return [pool.submit(work, x) for x in xs]
            """,
        }, select=["W011"])
        assert codes(findings) == ["W011"]

    def test_module_level_function_to_pool_is_clean(self):
        findings = lint({
            "src/pkg/m.py": """
                def work(x):
                    return x + 1

                def drive(pool, xs):
                    return [pool.submit(work, x) for x in xs]
            """,
        }, select=["W011"])
        assert findings == []

    def test_lock_into_submit_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                import threading

                def work(x, lock):
                    with lock:
                        return x

                def drive(pool, xs):
                    lock = threading.Lock()
                    return [pool.submit(work, x, lock) for x in xs]
            """,
        }, select=["W011"])
        assert "W011" in codes(findings)

    def test_file_handle_into_submit_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                def work(x, sink):
                    sink.write(str(x))

                def drive(pool, xs, path):
                    sink = open(path, "w")
                    return [pool.submit(work, x, sink) for x in xs]
            """,
        }, select=["W011"])
        assert "W011" in codes(findings)

    def test_worker_mutating_shared_config_fires(self):
        findings = lint({
            "src/pkg/driver.py": DRIVER,
            "src/pkg/work.py": """
                _SHARED_CONFIG = {}

                def work_item(key):
                    _SHARED_CONFIG[key] = key * 2
                    return _SHARED_CONFIG[key]
            """,
        }, select=["W011"])
        assert codes(findings) == ["W011"]

    def test_worker_reading_shared_config_is_clean(self):
        findings = lint({
            "src/pkg/driver.py": DRIVER,
            "src/pkg/work.py": """
                _SHARED_CONFIG = {"scale": 2}

                def work_item(key):
                    return key * _SHARED_CONFIG["scale"]
            """,
        }, select=["W011"])
        assert findings == []


class TestW012OrderDeterminism:
    def test_set_iteration_into_results_fires_with_fix(self):
        findings = lint({
            "src/pkg/m.py": """
                def collect(pending):
                    results = []
                    for name in set(pending):
                        results.append(name)
                    return results
            """,
        }, select=["W012"])
        assert codes(findings) == ["W012"]
        fix = findings[0].fix
        assert fix is not None
        assert fix.before == "sorted(" and fix.after == ")"

    def test_sorted_set_iteration_is_clean(self):
        findings = lint({
            "src/pkg/m.py": """
                def collect(pending):
                    results = []
                    for name in sorted(set(pending)):
                        results.append(name)
                    return results
            """,
        }, select=["W012"])
        assert findings == []

    def test_dict_view_into_journal_write_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                def journal(store, records):
                    for index in records.keys():
                        store.append_event("done", index=index)
            """,
        }, select=["W012"])
        assert codes(findings) == ["W012"]

    def test_set_argument_into_serialization_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                import json

                def dump(tags):
                    return json.dumps(set(tags))
            """,
        }, select=["W012"])
        assert codes(findings) == ["W012"]

    def test_wallclock_into_fingerprint_fires(self):
        findings = lint({
            "src/pkg/m.py": """
                import time
                from pkg.ck import fingerprint

                def digest():
                    return fingerprint({"stamp": time.time()})
            """,
            "src/pkg/ck.py": """
                def fingerprint(params):
                    return str(sorted(params))
            """,
        }, select=["W012"])
        assert codes(findings) == ["W012"]

    def test_wallclock_for_progress_logging_is_clean(self):
        findings = lint({
            "src/pkg/m.py": """
                import time

                def timed(fn):
                    t0 = time.monotonic()
                    out = fn()
                    print(time.monotonic() - t0)
                    return out
            """,
        }, select=["W012"])
        assert findings == []


CONFIG_COVERED = """
    from dataclasses import dataclass
    from pkg.ck import fingerprint

    @dataclass(frozen=True)
    class RunConfig:
        n_users: int
        seed: int

    def digest(config):
        return fingerprint({"n_users": config.n_users,
                            "seed": config.seed})
"""

CK_MODULE = """
    def fingerprint(params):
        return str(sorted(params))
"""


class TestW013FingerprintCoverage:
    def test_uncovered_field_fires_at_field_line(self):
        findings = lint({
            "src/pkg/m.py": """
                from dataclasses import dataclass
                from pkg.ck import fingerprint

                @dataclass(frozen=True)
                class RunConfig:
                    n_users: int
                    plc_mode: str

                def digest(config):
                    return fingerprint({"n_users": config.n_users})
            """,
            "src/pkg/ck.py": CK_MODULE,
        }, select=["W013"])
        assert codes(findings) == ["W013"]
        assert "plc_mode" in findings[0].message

    def test_fully_covered_config_is_clean(self):
        findings = lint({
            "src/pkg/m.py": CONFIG_COVERED,
            "src/pkg/ck.py": CK_MODULE,
        }, select=["W013"])
        assert findings == []

    def test_rule_silent_when_tree_has_no_fingerprint(self):
        # Without any fingerprint site the key set is unknowable, so
        # the rule must not guess.
        findings = lint({
            "src/pkg/m.py": """
                from dataclasses import dataclass

                @dataclass
                class RunConfig:
                    n_users: int
            """,
        }, select=["W013"])
        assert findings == []

    def test_classvar_field_is_exempt(self):
        findings = lint({
            "src/pkg/m.py": """
                from dataclasses import dataclass
                from typing import ClassVar
                from pkg.ck import fingerprint

                @dataclass
                class RunConfig:
                    SCHEMA: ClassVar[int] = 1
                    n_users: int

                def digest(config):
                    return fingerprint({"n_users": config.n_users})
            """,
            "src/pkg/ck.py": CK_MODULE,
        }, select=["W013"])
        assert findings == []

    def test_field_suppression_with_justification(self):
        findings = lint({
            "src/pkg/m.py": """
                from dataclasses import dataclass
                from pkg.ck import fingerprint

                @dataclass
                class RunConfig:
                    n_users: int
                    # woltlint: disable=W013 — operational knob only
                    max_retries: int

                def digest(config):
                    return fingerprint({"n_users": config.n_users})
            """,
            "src/pkg/ck.py": CK_MODULE,
        }, select=["W013"])
        assert findings == []


class TestRealTreeInvariantBreaks:
    """Deliberately break repo invariants and prove woltlint objects.

    These are the acceptance tests for the project pass: the checks
    must hold on the *actual* runner source, not just on toy fixtures.
    """

    def test_unfingerprinted_runconfig_field_is_caught(self):
        runner_path = "src/repro/sim/runner.py"
        source = (REPO / runner_path).read_text()
        marker = "    max_retries: int\n"
        assert marker in source, "fixture drifted: _RunConfig changed"
        broken = source.replace(
            marker, marker + "    ber_floor: float\n", 1)
        findings = lint({runner_path: broken}, select=["W013"])
        assert codes(findings) == ["W013"]
        assert "ber_floor" in findings[0].message

    def test_unmodified_runner_is_clean(self):
        runner_path = "src/repro/sim/runner.py"
        source = (REPO / runner_path).read_text()
        assert lint({runner_path: source}, select=["W013"]) == []

    def test_lambda_handed_to_real_pool_is_caught(self):
        runner_path = "src/repro/sim/runner.py"
        source = (REPO / runner_path).read_text()
        broken = source + textwrap.dedent("""

            def _sneak_lambda(pool, specs):
                return [pool.submit(lambda s: s, spec)
                        for spec in specs]
        """)
        findings = lint({runner_path: broken}, select=["W011"])
        assert codes(findings) == ["W011"]
