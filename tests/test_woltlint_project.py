"""Unit tests for the woltlint v2 project model and dataflow engine."""

from __future__ import annotations

import ast
import textwrap
from typing import Dict, List, Tuple

from tools.woltlint.dataflow import (TAG_HANDLE, TAG_LOCK, TAG_RNG,
                                     TAG_RNG_RAW, TAG_SEEDSEQ,
                                     TAG_UNORDERED, TAG_WALLCLOCK,
                                     FunctionFlow)
from tools.woltlint.projectmodel import (ProjectModel,
                                         module_name_for_path)


def build_model(files: Dict[str, str]) -> ProjectModel:
    parsed: List[Tuple[str, ast.Module]] = []
    for path, source in sorted(files.items()):
        parsed.append((path, ast.parse(textwrap.dedent(source))))
    return ProjectModel.build(parsed)


def flow_of(source: str, name: str = "f") -> FunctionFlow:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return FunctionFlow(node)
    raise AssertionError(f"no function {name!r} in fixture")


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for_path("src/repro/sim/runner.py") == \
            "repro.sim.runner"

    def test_plain_path(self):
        assert module_name_for_path("tools/woltlint/cli.py") == \
            "tools.woltlint.cli"

    def test_package_init(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"


class TestImportsAndCallGraph:
    def test_absolute_import_resolves_cross_module(self):
        model = build_model({
            "src/pkg/util.py": """
                def helper():
                    return 1
            """,
            "src/pkg/user.py": """
                from pkg.util import helper

                def caller():
                    return helper()
            """,
        })
        caller = model.functions["pkg.user:caller"]
        assert "pkg.util:helper" in caller.calls

    def test_relative_import_resolves(self):
        model = build_model({
            "src/pkg/util.py": """
                def helper():
                    return 1
            """,
            "src/pkg/user.py": """
                from .util import helper

                def caller():
                    return helper()
            """,
        })
        caller = model.functions["pkg.user:caller"]
        assert "pkg.util:helper" in caller.calls

    def test_aliased_import_resolves(self):
        model = build_model({
            "src/pkg/util.py": """
                def helper():
                    return 1
            """,
            "src/pkg/user.py": """
                from pkg.util import helper as h

                def caller():
                    return h()
            """,
        })
        assert "pkg.util:helper" in \
            model.functions["pkg.user:caller"].calls

    def test_self_method_call_resolves(self):
        model = build_model({
            "src/pkg/m.py": """
                class Thing:
                    def a(self):
                        return self.b()

                    def b(self):
                        return 1
            """,
        })
        assert "pkg.m:Thing.b" in \
            model.functions["pkg.m:Thing.a"].calls

    def test_nested_def_call_resolves(self):
        model = build_model({
            "src/pkg/m.py": """
                def outer():
                    def inner():
                        return 1
                    return inner()
            """,
        })
        assert "pkg.m:outer.inner" in \
            model.functions["pkg.m:outer"].calls

    def test_dispatch_via_variable_reference_is_an_edge(self):
        # run_fn = a if cond else b; run_fn(...) must not hide a/b.
        model = build_model({
            "src/pkg/m.py": """
                def fast():
                    return 1

                def slow():
                    return 2

                def dispatch(cond):
                    run_fn = fast if cond else slow
                    return run_fn()
            """,
        })
        calls = model.functions["pkg.m:dispatch"].calls
        assert "pkg.m:fast" in calls and "pkg.m:slow" in calls


class TestWorkerReachability:
    FILES = {
        "src/pkg/work.py": """
            def leaf():
                return 1

            def work_item(x):
                return leaf()

            def parent_only():
                return 3
        """,
        "src/pkg/driver.py": """
            from concurrent.futures import ProcessPoolExecutor
            from pkg.work import work_item

            def drive(items):
                with ProcessPoolExecutor() as pool:
                    futures = [pool.submit(work_item, it)
                               for it in items]
                return [f.result() for f in futures]
        """,
    }

    def test_entry_point_found(self):
        model = build_model(self.FILES)
        assert "pkg.work:work_item" in model.entry_points

    def test_reachability_closes_over_calls(self):
        model = build_model(self.FILES)
        assert "pkg.work:leaf" in model.worker_reachable
        assert "pkg.work:parent_only" not in model.worker_reachable


class TestPayloadClasses:
    def test_direct_construction_into_submit(self):
        model = build_model({
            "src/pkg/m.py": """
                from dataclasses import dataclass

                @dataclass
                class Task:
                    n: int

                def work(task):
                    return task.n

                def drive(pool):
                    return pool.submit(work, Task(1))
            """,
        })
        assert "pkg.m:Task" in model.payload_classes

    def test_maker_function_and_transitive_fields(self):
        model = build_model({
            "src/pkg/m.py": """
                from dataclasses import dataclass
                from typing import Tuple

                @dataclass
                class Spec:
                    index: int

                @dataclass
                class Chunk:
                    specs: Tuple[Spec, ...]

                def make_chunk(specs):
                    return Chunk(specs=tuple(specs))

                def work(chunk):
                    return len(chunk.specs)

                def drive(pool, specs):
                    payload = make_chunk(specs)
                    return pool.submit(work, payload)
            """,
        })
        assert "pkg.m:Chunk" in model.payload_classes
        # Closed transitively through the Tuple[Spec, ...] annotation.
        assert "pkg.m:Spec" in model.payload_classes


class TestFingerprintKeys:
    def test_none_without_any_fingerprint_site(self):
        model = build_model({"src/pkg/m.py": "x = 1\n"})
        assert model.fingerprint_keys is None

    def test_literal_and_augmented_keys_unioned(self):
        model = build_model({
            "src/pkg/m.py": """
                from pkg.ck import fingerprint

                def run(seed):
                    params = {"kind": "sweep", "seed": seed}
                    params["n_trials"] = 10
                    params.update({"plc_mode": "fixed"})
                    return fingerprint(dict(params))
            """,
            "src/pkg/ck.py": """
                def fingerprint(params):
                    return str(sorted(params))
            """,
        })
        assert model.fingerprint_keys == {"kind", "seed", "n_trials",
                                          "plc_mode"}

    def test_config_class_detection(self):
        model = build_model({
            "src/pkg/m.py": """
                from dataclasses import dataclass

                @dataclass
                class _RunConfig:
                    n_users: int

                @dataclass
                class TrialSpec:
                    index: int

                @dataclass
                class Other:
                    x: int
            """,
        })
        names = [k.name for k in model.config_classes()]
        assert names == ["_RunConfig", "TrialSpec"]


class TestDataflowTags:
    def test_raw_seeded_rng_tagged(self):
        flow = flow_of("""
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                use(rng)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert site.arg_tags[0] >= {TAG_RNG, TAG_RNG_RAW}

    def test_seedseq_seeded_rng_not_raw(self):
        flow = flow_of("""
            import numpy as np

            def f(seed):
                seq = np.random.SeedSequence(seed)
                rng = np.random.default_rng(seq)
                use(rng)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_RNG in site.arg_tags[0]
        assert TAG_RNG_RAW not in site.arg_tags[0]

    def test_spawn_children_and_subscript(self):
        flow = flow_of("""
            import numpy as np

            def f(seed):
                children = np.random.SeedSequence(seed).spawn(4)
                use(children[0])
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_SEEDSEQ in site.arg_tags[0]

    def test_param_name_seeding(self):
        flow = flow_of("""
            def f(rng, scenario_seq):
                use(rng, scenario_seq)
        """)
        (site,) = flow.call_sites
        assert TAG_RNG in site.arg_tags[0]
        assert TAG_SEEDSEQ in site.arg_tags[1]

    def test_set_is_unordered_and_sorted_launders(self):
        flow = flow_of("""
            def f(xs):
                s = set(xs)
                use(s)
                use(sorted(s))
        """)
        sites = [s for s in flow.call_sites
                 if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED in sites[0].arg_tags[0]
        assert TAG_UNORDERED not in sites[1].arg_tags[0]

    def test_dict_views_unordered_list_transparent(self):
        flow = flow_of("""
            def f(d):
                ks = d.keys()
                use(list(ks))
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED in site.arg_tags[0]

    def test_reassignment_clears_tags(self):
        flow = flow_of("""
            def f(xs):
                s = set(xs)
                s = sorted(xs)
                use(s)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED not in site.arg_tags[0]

    def test_branches_join_by_union(self):
        flow = flow_of("""
            def f(xs, cond):
                if cond:
                    s = set(xs)
                else:
                    s = list(xs)
                use(s)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED in site.arg_tags[0]

    def test_loop_carried_tag_reaches_earlier_sink(self):
        # The body is visited twice, so a tag acquired at the bottom
        # of the loop reaches a sink at the top.
        flow = flow_of("""
            def f(xs):
                x = []
                for _ in range(3):
                    use(x)
                    x = set(xs)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED in site.arg_tags[0]

    def test_wallclock_propagates_through_arithmetic(self):
        flow = flow_of("""
            import time

            def f():
                t0 = time.time()
                elapsed = time.time() - t0
                use(elapsed)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_WALLCLOCK in site.arg_tags[0]

    def test_lock_and_handle_tags(self):
        flow = flow_of("""
            import threading

            def f(path):
                lock = threading.Lock()
                handle = open(path)
                use(lock, handle)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_LOCK in site.arg_tags[0]
        assert TAG_HANDLE in site.arg_tags[1]

    def test_comprehension_over_set_keeps_unordered(self):
        flow = flow_of("""
            def f(xs):
                out = [x + 1 for x in set(xs)]
                use(out)
        """)
        (site,) = [s for s in flow.call_sites
                   if getattr(s.node.func, "id", "") == "use"]
        assert TAG_UNORDERED in site.arg_tags[0]
