"""Per-rule tests for the woltlint invariant checker.

Every rule gets at least one true-positive fixture and one clean
fixture, exercised through :func:`tools.woltlint.analyze_source` with a
virtual path (several rules are path-scoped).
"""

from __future__ import annotations

import textwrap

from tools.woltlint import analyze_source
from tools.woltlint.rules import RULES


def findings_for(source: str, path: str = "core/module.py",
                 select=None):
    return analyze_source(textwrap.dedent(source), path, select=select)


def codes(source: str, path: str = "core/module.py", select=None):
    return [f.rule for f in findings_for(source, path, select=select)]


class TestRegistry:
    def test_all_fifteen_rules_registered(self):
        assert set(RULES) == {"W001", "W002", "W003", "W004", "W005",
                              "W006", "W007", "W008", "W009", "W010",
                              "W011", "W012", "W013", "W014", "W015"}

    def test_rules_carry_metadata(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name
            assert rule.description
            assert rule.rationale


class TestW001UnseededRng:
    def test_unseeded_default_rng_flagged(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert codes(src) == ["W001"]

    def test_bare_default_rng_import_flagged(self):
        src = """
        from numpy.random import default_rng
        rng = default_rng()
        """
        assert codes(src) == ["W001"]

    def test_global_state_call_flagged(self):
        src = """
        import numpy as np
        np.random.seed(3)
        x = np.random.uniform(0, 1, 5)
        """
        assert codes(src) == ["W001", "W001"]

    def test_seeded_generator_clean(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(42)
        child = np.random.default_rng(np.random.SeedSequence(1))
        x = rng.uniform(0, 1, 5)
        y = rng.random(3)
        """
        assert codes(src) == []


class TestW002SeedArithmetic:
    def test_seed_plus_offset_flagged(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(seed + 1000 + trial)
        """
        assert codes(src) == ["W002"]

    def test_seed_sequence_arithmetic_flagged(self):
        src = """
        import numpy as np
        ss = np.random.SeedSequence(2 * base_seed)
        """
        assert codes(src) == ["W002"]

    def test_spawned_children_clean(self):
        src = """
        import numpy as np
        children = np.random.SeedSequence(seed).spawn(4)
        rng = np.random.default_rng(children[2])
        plain = np.random.default_rng(seed)
        """
        assert codes(src) == []

    def test_arithmetic_without_seed_name_clean(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(2 + 3)
        """
        assert codes(src) == []


class TestW003ScalarEvalInLoop:
    def test_evaluate_in_for_loop_flagged(self):
        src = """
        def search(scenario, candidates):
            best = None
            for cand in candidates:
                value = evaluate(scenario, cand).aggregate
            return best
        """
        assert codes(src) == ["W003"]

    def test_evaluate_in_while_and_comprehension_flagged(self):
        src = """
        def search(scenario, cands):
            while cands:
                engine.evaluate(scenario, cands.pop())
            return [evaluate(scenario, c) for c in cands]
        """
        assert codes(src) == ["W003", "W003"]

    def test_batch_call_in_loop_clean(self):
        src = """
        def search(scenario, chunks):
            for chunk in chunks:
                evaluate_batch(scenario, chunk)
        """
        assert codes(src) == []

    def test_evaluate_outside_loop_clean(self):
        src = """
        def score(scenario, assignment):
            return evaluate(scenario, assignment).aggregate
        """
        assert codes(src) == []

    def test_nested_function_escapes_enclosing_loop(self):
        # The def runs later, not per-iteration: lexical nesting inside
        # a loop does not make the call a per-iteration call.
        src = """
        def outer(scenario):
            for _ in range(3):
                def helper(vec):
                    return evaluate(scenario, vec)
        """
        assert codes(src) == []

    def test_scoped_to_core_and_sim(self):
        src = """
        def search(scenario, candidates):
            for cand in candidates:
                evaluate(scenario, cand)
        """
        assert codes(src, path="experiments/module.py") == []
        assert codes(src, path="src/repro/sim/module.py") == ["W003"]


class TestW004ReportMutation:
    def test_attribute_assignment_flagged(self):
        src = """
        report.aggregate = 3.0
        """
        assert codes(src) == ["W004"]

    def test_augmented_and_setattr_flagged(self):
        src = """
        batch_report.user_throughputs += 1.0
        object.__setattr__(report, "aggregate", 0.0)
        """
        assert codes(src) == ["W004", "W004"]

    def test_building_and_binding_clean(self):
        src = """
        report = evaluate(scenario, assignment)
        self.report = report
        value = report.aggregate
        other.assignment = vec
        """
        assert codes(src) == []


class TestW005UnitSuffix:
    def test_float_field_without_suffix_flagged(self):
        src = """
        class Result:
            capacity: float
        """
        assert codes(src) == ["W005"]

    def test_float_parameter_without_suffix_flagged(self):
        src = """
        def allocate(total_throughput: float) -> float:
            return total_throughput
        """
        assert codes(src) == ["W005"]

    def test_suffixed_and_nonfloat_clean(self):
        src = """
        class Result:
            capacity_mbps: float
            throughputs: tuple
            n_users: int

        def allocate(link_capacity_mbps: float, alpha: float) -> float:
            return link_capacity_mbps * alpha
        """
        assert codes(src) == []


class TestW006BareExceptInEngine:
    def test_bare_except_flagged_in_engine(self):
        src = """
        try:
            allocate()
        except:
            pass
        """
        assert codes(src, path="src/repro/net/engine.py") == ["W006"]

    def test_swallowing_broad_except_flagged(self):
        src = """
        try:
            allocate()
        except Exception:
            result = None
        """
        assert codes(src, path="src/repro/plc/sharing.py") == ["W006"]

    def test_reraising_broad_except_clean(self):
        src = """
        try:
            allocate()
        except Exception as exc:
            raise RuntimeError("engine failure") from exc
        """
        assert codes(src, path="src/repro/wifi/sharing.py") == []

    def test_narrow_except_clean(self):
        src = """
        try:
            allocate()
        except ValueError:
            result = None
        """
        assert codes(src, path="src/repro/net/engine.py") == []

    def test_rule_scoped_to_engine_modules(self):
        src = """
        try:
            allocate()
        except:
            pass
        """
        assert codes(src, path="src/repro/cli.py") == []


class TestW007SwallowedTransportException:
    def test_broad_except_around_transport_call_flagged(self):
        src = """
        try:
            delivered = self.transport.deliver_directive(directive)
        except Exception:
            delivered = False
        """
        assert codes(src, path="src/repro/core/controller.py") == ["W007"]

    def test_bare_except_around_transport_method_flagged(self):
        src = """
        try:
            report = observe_report(report)
        except:
            report = None
        """
        assert codes(src, path="src/repro/sim/faults.py") == ["W007"]

    def test_reraising_broad_except_clean(self):
        src = """
        try:
            delivered = transport.deliver_directive(directive)
        except Exception as exc:
            raise RuntimeError("transport failure") from exc
        """
        assert codes(src) == []

    def test_non_transport_try_clean(self):
        src = """
        try:
            value = compute()
        except Exception:
            value = None
        """
        assert codes(src) == []

    def test_narrow_except_clean(self):
        src = """
        try:
            ok = self.transport.handoff_succeeds(directive)
        except ValueError:
            ok = False
        """
        assert codes(src) == []


class TestW008NonAtomicPersistence:
    def test_truncating_open_on_results_path_flagged(self):
        src = """
        def record(results_path, payload):
            with open(results_path, "w") as handle:
                handle.write(payload)
        """
        assert codes(src) == ["W008"]

    def test_open_inside_save_function_flagged(self):
        src = """
        def save_report(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
        assert codes(src) == ["W008"]

    def test_write_text_on_checkpoint_path_flagged(self):
        src = """
        def finish(checkpoint_path, text):
            checkpoint_path.write_text(text)
        """
        assert codes(src) == ["W008"]

    def test_path_call_write_text_in_save_fn_flagged(self):
        # Path(path).write_text — the receiver is a call expression,
        # not a dotted name; the rule must still see the method.
        src = """
        from pathlib import Path

        def save_history(path, text):
            Path(path).write_text(text)
        """
        assert codes(src) == ["W008"]

    def test_json_dump_onto_results_handle_flagged(self):
        src = """
        import json

        def emit(payload, results_handle):
            json.dump(payload, results_handle)
        """
        assert codes(src) == ["W008"]

    def test_atomic_helper_itself_clean(self):
        # The helper is where the non-atomic write legitimately lives.
        src = """
        import os

        def atomic_write_text(path, text):
            with open(path + ".tmp", "w") as handle:
                handle.write(text)
            os.replace(path + ".tmp", path)
        """
        assert codes(src) == []

    def test_read_mode_and_unrelated_writes_clean(self):
        src = """
        def load(results_path):
            with open(results_path, "r") as handle:
                return handle.read()

        def scratch(tmp_path, text):
            tmp_path.write_text(text)
        """
        assert codes(src) == []


class TestW009UnsanitizedTelemetryScenario:
    def test_telemetry_named_function_flagged(self):
        src = """
        from repro.core.problem import Scenario

        def scenario_from_report(report_rates, plc):
            return Scenario(wifi_rates=report_rates, plc_rates=plc)
        """
        assert codes(src) == ["W009"]

    def test_telemetry_named_argument_flagged(self):
        src = """
        from repro.core.problem import Scenario

        def rebuild(measured_wifi, plc):
            return Scenario(wifi_rates=measured_wifi, plc_rates=plc)
        """
        assert codes(src) == ["W009"]

    def test_telemetry_data_in_call_flagged(self):
        src = """
        import numpy as np
        from repro.core.problem import Scenario

        def assemble(cache, plc):
            scan_rows = np.vstack(list(cache.values()))
            return Scenario(wifi_rates=scan_rows, plc_rates=plc)
        """
        assert codes(src) == ["W009"]

    def test_isfinite_gate_clean(self):
        src = """
        import numpy as np
        from repro.core.problem import Scenario

        def scenario_from_report(report_rates, plc):
            if not np.isfinite(report_rates).all():
                raise ValueError("non-finite scan rates")
            return Scenario(wifi_rates=report_rates, plc_rates=plc)
        """
        assert codes(src) == []

    def test_sanitize_helper_clean(self):
        src = """
        from repro.core.problem import Scenario

        def scenario_from_report(guard, report_rates, plc):
            clean = guard.sanitize_rates(report_rates)
            return Scenario(wifi_rates=clean, plc_rates=plc)
        """
        assert codes(src) == []

    def test_synthetic_scenario_clean(self):
        # No telemetry in sight: synthesis from a ground-truth model.
        src = """
        from repro.core.problem import Scenario

        def make_floor(wifi, plc):
            return Scenario(wifi_rates=wifi, plc_rates=plc)
        """
        assert codes(src) == []

    def test_telemetry_function_without_scenario_clean(self):
        src = """
        def receive_scan_report(self, report):
            self.cache[report.user] = report
        """
        assert codes(src) == []


class TestParseErrors:
    def test_unparsable_file_reported(self):
        assert codes("def broken(:\n") == ["E001"]


class TestSelection:
    def test_select_restricts_rules(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        rng2 = np.random.default_rng(seed + 1)
        """
        assert codes(src, select=["W002"]) == ["W002"]


class TestW014UnboundedDispatch:
    def test_missing_timeout_flagged(self):
        src = """
        from repro.sim.dispatch import dispatch_chunked
        dispatch_chunked(specs, config, fn, workers=4, record=record)
        """
        assert codes(src) == ["W014"]

    def test_run_chunked_flagged_too(self):
        src = """
        from repro.sim import dispatch
        dispatch.run_chunked(items, config, fn, workers=2)
        """
        assert codes(src) == ["W014"]

    def test_explicit_timeout_is_clean(self):
        src = """
        from repro.sim.dispatch import dispatch_chunked
        dispatch_chunked(specs, config, fn, workers=4,
                         timeout_s=30.0, record=record)
        """
        assert codes(src) == []

    def test_explicit_none_records_the_choice(self):
        # timeout_s=None documents that unbounded waiting is
        # deliberate (e.g. no process boundary to reap across).
        src = """
        from repro.sim.dispatch import run_chunked
        run_chunked(items, config, fn, workers=2, timeout_s=None)
        """
        assert codes(src) == []

    def test_kwargs_splat_may_carry_a_timeout(self):
        src = """
        from repro.sim.dispatch import dispatch_chunked
        dispatch_chunked(specs, config, fn, **dispatch_opts)
        """
        assert codes(src) == []

    def test_suppression_comment_is_honored(self):
        src = """
        from repro.sim.dispatch import run_chunked
        run_chunked(items, config, fn)  # woltlint: disable=W014
        """
        assert codes(src) == []

    def test_unrelated_calls_not_flagged(self):
        src = """
        pool.map_chunked(items)
        run(items, timeout=3)
        """
        assert codes(src) == []


class TestW015UnvalidatedIngest:
    def test_loads_into_scenario_flagged(self):
        src = """
        import json

        def read_snapshot(path):
            payload = json.loads(path.read_text())
            return Scenario(wifi_rates=payload["wifi_rates"],
                            plc_rates=payload["plc_rates"])
        """
        assert codes(src) == ["W015"]

    def test_yaml_into_journal_append_flagged(self):
        src = """
        import yaml

        def ingest(store, raw):
            entry = yaml.safe_load(raw)
            store.append(entry)
        """
        assert codes(src) == ["W015"]

    def test_loads_into_fingerprint_flagged(self):
        src = """
        import json

        def identity(raw):
            params = json.loads(raw)
            return fingerprint(params)
        """
        assert codes(src) == ["W015"]

    def test_validation_step_is_clean(self):
        # A validator-shaped call in the same function shows the
        # payload goes through a vetting layer before the sink.
        src = """
        import json

        def read_snapshot(path):
            payload = json.loads(path.read_text())
            check_snapshot_header(payload)
            return Scenario(wifi_rates=payload["wifi_rates"])
        """
        assert codes(src) == []

    def test_untainted_sink_args_are_clean(self):
        src = """
        import json

        def rebuild(path, rates):
            meta = json.loads(path.read_text())
            del meta
            return Scenario(wifi_rates=rates)
        """
        assert codes(src) == []

    def test_module_level_code_not_flagged(self):
        # The taint scope is per-function; module bodies are config.
        src = """
        import json
        payload = json.loads(RAW)
        scenario = Scenario(wifi_rates=payload)
        """
        assert codes(src) == []

    def test_suppression_comment_is_honored(self):
        src = """
        import json

        def read_snapshot(path):
            payload = json.loads(path.read_text())
            return Scenario(wifi_rates=payload["w"])  # woltlint: disable=W015
        """
        assert codes(src) == []

    def test_non_deserialized_names_are_clean(self):
        src = """
        def rebuild(payload):
            return Scenario(wifi_rates=payload["wifi_rates"])
        """
        assert codes(src) == []
