"""Tests for the hotspot and diurnal workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.workload import DiurnalProfile, hotspot_positions


class TestHotspotPositions:
    def test_within_bounds(self, rng):
        xy = hotspot_positions(300, 100.0, 60.0, rng)
        assert xy.shape == (300, 2)
        assert np.all(xy[:, 0] >= 0) and np.all(xy[:, 0] <= 100.0)
        assert np.all(xy[:, 1] >= 0) and np.all(xy[:, 1] <= 60.0)

    def test_clustering_is_real(self, rng):
        """Hotspot placement concentrates users more than uniform."""
        hot = hotspot_positions(500, 100.0, 100.0, rng,
                                hotspot_fraction=1.0,
                                hotspot_sigma_m=5.0, n_hotspots=2)
        uniform = np.column_stack([rng.uniform(0, 100, 500),
                                   rng.uniform(0, 100, 500)])
        # Mean nearest-neighbour distance shrinks under clustering.
        def mean_nn(xy):
            d = np.sqrt(((xy[:, None, :] - xy[None, :, :]) ** 2
                         ).sum(-1))
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        assert mean_nn(hot) < 0.5 * mean_nn(uniform)

    def test_fraction_zero_is_uniformish(self, rng):
        xy = hotspot_positions(400, 100.0, 100.0, rng,
                               hotspot_fraction=0.0)
        # Quadrant occupancy roughly balanced.
        quadrant = (xy[:, 0] > 50).astype(int) * 2 + (xy[:, 1] > 50)
        counts = np.bincount(quadrant, minlength=4)
        assert counts.min() > 50

    def test_explicit_centers(self, rng):
        centers = np.array([[10.0, 10.0]])
        xy = hotspot_positions(100, 100.0, 100.0, rng,
                               hotspot_fraction=1.0,
                               hotspot_sigma_m=2.0, centers=centers)
        assert np.median(np.hypot(xy[:, 0] - 10, xy[:, 1] - 10)) < 6.0

    def test_zero_users(self, rng):
        assert hotspot_positions(0, 10.0, 10.0, rng).shape == (0, 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            hotspot_positions(-1, 10, 10, rng)
        with pytest.raises(ValueError):
            hotspot_positions(5, 10, 10, rng, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            hotspot_positions(5, 10, 10, rng, hotspot_sigma_m=0.0)
        with pytest.raises(ValueError):
            hotspot_positions(5, 10, 10, rng, n_hotspots=0)
        with pytest.raises(ValueError):
            hotspot_positions(5, 10, 10, rng,
                              centers=np.ones((2, 3)))


class TestDiurnalProfile:
    def test_midday_peak(self):
        profile = DiurnalProfile()
        assert profile.multiplier(13.0) > profile.multiplier(8.5)
        assert profile.multiplier(13.0) == pytest.approx(
            profile.peak_multiplier, rel=0.05)

    def test_off_hours_floor(self):
        profile = DiurnalProfile()
        assert profile.multiplier(3.0) == profile.off_hours_multiplier
        assert profile.multiplier(23.0) == profile.off_hours_multiplier

    def test_wraps_modulo_24(self):
        profile = DiurnalProfile()
        assert profile.multiplier(13.0) == profile.multiplier(13.0 + 24)

    def test_rate_at(self):
        profile = DiurnalProfile(peak_multiplier=2.0)
        assert profile.rate_at(3.0, 13.0) == pytest.approx(6.0, rel=0.05)
        with pytest.raises(ValueError):
            profile.rate_at(-1.0, 13.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(start_hour=10.0, end_hour=9.0)
        with pytest.raises(ValueError):
            DiurnalProfile(peak_multiplier=0.0)

    def test_arrival_sampling_respects_intensity(self):
        """Business hours see far more arrivals than the night."""
        profile = DiurnalProfile()
        rng = np.random.default_rng(0)
        times = profile.sample_arrival_times(base_rate=30.0,
                                             duration_hours=24.0,
                                             rng=rng)
        hours = times % 24
        day = np.sum((hours >= 9) & (hours <= 17))
        night = np.sum((hours < 7) | (hours > 19))
        assert day > 5 * max(night, 1)

    def test_arrival_sampling_edge_cases(self):
        profile = DiurnalProfile()
        rng = np.random.default_rng(0)
        assert profile.sample_arrival_times(0.0, 5.0, rng).size == 0
        with pytest.raises(ValueError):
            profile.sample_arrival_times(1.0, 0.0, rng)

    @given(st.floats(min_value=0.0, max_value=48.0))
    @settings(max_examples=100)
    def test_multiplier_bounded(self, hour):
        profile = DiurnalProfile()
        m = profile.multiplier(hour)
        assert profile.off_hours_multiplier - 1e-9 <= m
        assert m <= profile.peak_multiplier + 1e-9
