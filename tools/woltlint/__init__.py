"""woltlint — AST-based invariant checker for the WOLT reproduction.

PR 1 made the repo's correctness guarantees *contractual*: batched
searches must be bit-identical to the scalar oracles, and parallel
trials must be bit-identical to serial runs via SeedSequence-spawned
RNGs.  Those contracts rest on coding disciplines that ordinary linters
cannot see — seeded RNG plumbing, ``SeedSequence.spawn`` child-stream
derivation, batch-engine usage on hot paths, immutable throughput
reports, and Mbps unit conventions.  ``woltlint`` turns each discipline
into a machine-checked rule over the stdlib :mod:`ast`.

Run it with::

    python -m tools.woltlint src tests

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the suppression
syntax (``# woltlint: disable=W001``), the baseline ratchet, and how to
add a rule.
"""

from .analyzer import Finding, analyze_file, analyze_paths, analyze_source
from .baseline import Baseline, apply_baseline
from .rules import RULES, Rule, all_rule_codes, register

__all__ = [
    "Finding",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "Baseline",
    "apply_baseline",
    "RULES",
    "Rule",
    "all_rule_codes",
    "register",
]

__version__ = "1.0.0"
