"""woltlint — AST-based invariant checker for the WOLT reproduction.

PR 1 made the repo's correctness guarantees *contractual*: batched
searches must be bit-identical to the scalar oracles, and parallel
trials must be bit-identical to serial runs via SeedSequence-spawned
RNGs.  Those contracts rest on coding disciplines that ordinary linters
cannot see — seeded RNG plumbing, ``SeedSequence.spawn`` child-stream
derivation, batch-engine usage on hot paths, immutable throughput
reports, and Mbps unit conventions.  ``woltlint`` turns each discipline
into a machine-checked rule over the stdlib :mod:`ast`.

v2 adds a **project pass**: all analyzed files are linked into a
module/call graph (:mod:`~tools.woltlint.projectmodel`), per-function
tag propagation answers "does value P reach sink S"
(:mod:`~tools.woltlint.dataflow`), and the flow-sensitive rules
W010-W013 check the cross-module contracts — SeedSequence-to-worker
RNG plumbing, pool-payload picklability, unordered-iteration and
wall-clock leaks, and run-fingerprint coverage of the config
dataclasses.  Content-hash caching (``--cache``), SARIF 2.1.0 output
(``--format sarif``), and a mechanical autofixer (``--fix``) ride on
top.

Run it with::

    python -m tools.woltlint src tests tools benchmarks

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the suppression
syntax (``# woltlint: disable=W001``), the baseline ratchet, and how to
add a rule.
"""

from .analyzer import (Finding, analyze_file, analyze_paths,
                       analyze_source, analyze_sources)
from .baseline import Baseline, apply_baseline
from .rules import RULES, ProjectRule, Rule, all_rule_codes, register

__all__ = [
    "Finding",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "Baseline",
    "apply_baseline",
    "RULES",
    "Rule",
    "ProjectRule",
    "all_rule_codes",
    "register",
]

__version__ = "2.0.0"
