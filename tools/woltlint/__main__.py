"""Module entry point: ``python -m tools.woltlint [paths...]``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Output was piped into a pager/head that exited early; redirect
        # stdout to devnull so interpreter teardown does not re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
