"""File walking, suppression comments, and rule dispatch.

Analysis runs in two passes:

1. **Per-file pass** — each file's AST goes through every single-file
   rule (W001-W009), exactly as in woltlint v1.
2. **Project pass** — all parsed trees are linked into a
   :class:`~.projectmodel.ProjectModel` and the
   :class:`~.rules.ProjectRule` subclasses (W010+) run once over the
   whole set.  Their findings land on concrete file/line locations, so
   suppressions and baselines apply unchanged.

Suppression syntax (mirrors the familiar ``noqa`` shape):

* ``some_code()  # woltlint: disable=W001`` — suppresses the listed
  rule(s) on that line.
* A suppression anywhere on a **multi-line statement** (a trailing
  comment on any continuation line of a parenthesized call, for
  example) covers the whole statement — findings always anchor to the
  statement's first line, so the comment works wherever it is
  physically placed.
* A standalone ``# woltlint: disable=W003`` comment line also covers
  the next statement, so a suppression can sit above the code it
  excuses together with its justification — which may continue over
  following comment lines; the whole comment block is skipped when
  finding the excused statement.
* ``# woltlint: disable-file=W005`` anywhere in a file suppresses the
  rule(s) for the whole file.

Multiple rules are comma-separated (``disable=W001,W002``); anything
after the rule list (a justification) is ignored by the parser but
strongly encouraged for readers.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import (Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from .findings import Finding
from .rules import RULES, ProjectRule, Rule
from . import flowrules  # noqa: F401 — registers W010-W013 in RULES
from .flowrules import ProjectContext
from .projectmodel import ProjectModel

__all__ = ["analyze_source", "analyze_file", "analyze_paths",
           "analyze_sources", "iter_python_files", "parse_suppressions",
           "expand_suppressions"]

#: Rule code for files the parser rejects.
PARSE_ERROR = "E001"

_SUPPRESS_RE = re.compile(
    r"#\s*woltlint:\s*(disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z]\d{3}(?:\s*,\s*[A-Za-z]\d{3})*)")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules",
              ".mypy_cache", ".ruff_cache", ".pytest_cache"}

Suppressions = Tuple[Dict[int, Set[str]], Set[str]]


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression comments from ``source``.

    Returns:
        ``(per_line, file_wide)`` where ``per_line`` maps a 1-based line
        number to the set of rule codes disabled on it and ``file_wide``
        is the set of codes disabled for the whole file.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return per_line, file_wide
    comment_only_lines: Set[int] = set()
    standalone_suppressions: List[Tuple[int, Set[str]]] = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        standalone = tok.line[:tok.start[1]].strip() == ""
        if standalone:
            comment_only_lines.add(tok.start[0])
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip().upper()
                 for c in match.group("rules").split(",")}
        if match.group(1) == "disable-file":
            file_wide |= codes
            continue
        line = tok.start[0]
        per_line.setdefault(line, set()).update(codes)
        if standalone:
            standalone_suppressions.append((line, codes))
    for line, codes in standalone_suppressions:
        # A comment-only suppression excuses the statement below it;
        # skip past the rest of its own comment block first, so a
        # multi-line justification can follow the rule list.
        target = line + 1
        while target in comment_only_lines:
            target += 1
        per_line.setdefault(target, set()).update(codes)
    return per_line, file_wide


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """``(first, last)`` physical-line spans of logical statements.

    Simple statements span their full extent; compound statements
    (``for``/``if``/``def``...) span only their header — from the
    keyword line to the line before their first body statement — so a
    suppression inside a loop body never leaks onto the loop itself.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if start is None or end is None:
            continue
        body = getattr(node, "body", None)
        if body:
            first_body = getattr(body[0], "lineno", None)
            if first_body is not None and first_body > start:
                end = first_body - 1
            else:
                end = start
        if end > start:
            spans.append((start, end))
    return spans


def expand_suppressions(per_line: Dict[int, Set[str]],
                        tree: Optional[ast.AST]
                        ) -> Dict[int, Set[str]]:
    """Spread suppression codes across multi-line statement spans.

    A ``# woltlint: disable=...`` trailing a continuation line used to
    be silently ignored, because findings anchor to the statement's
    *first* line.  With the AST available, every code found on any
    line of a statement's span is applied to the whole span.
    """
    if tree is None or not per_line:
        return per_line
    expanded: Dict[int, Set[str]] = {line: set(codes)
                                     for line, codes in per_line.items()}
    for start, end in _statement_spans(tree):
        codes: Set[str] = set()
        for line in range(start, end + 1):
            codes |= per_line.get(line, set())
        if not codes:
            continue
        for line in range(start, end + 1):
            expanded.setdefault(line, set()).update(codes)
    return expanded


def _select_rules(select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    codes = set(RULES)
    if select is not None:
        codes &= {c.upper() for c in select}
    if ignore is not None:
        codes -= {c.upper() for c in ignore}
    return [RULES[code]() for code in sorted(codes)]


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                file_wide: Set[str]) -> bool:
    if finding.rule in file_wide:
        return True
    return finding.rule in per_line.get(finding.line, ())


def _analyze_tree(tree: ast.AST, path: str, rules: Sequence[Rule],
                  per_line: Dict[int, Set[str]],
                  file_wide: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(path):
            continue
        for finding in rule.check(tree, path):
            if not _suppressed(finding, per_line, file_wide):
                findings.append(finding)
    return sorted(findings)


def analyze_source(source: str, path: str,
                   select: Optional[Iterable[str]] = None,
                   ignore: Optional[Iterable[str]] = None
                   ) -> List[Finding]:
    """Run every applicable single-file rule over one file's source.

    ``path`` is the analysis-root-relative display path; rules also use
    it for path scoping (e.g. W003 only fires under ``core/``/``sim/``).
    Project rules (W010+) need the whole file set — use
    :func:`analyze_sources` or :func:`analyze_paths` for those.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule=PARSE_ERROR,
                        message=f"file does not parse: {exc.msg}")]
    per_line, file_wide = parse_suppressions(source)
    per_line = expand_suppressions(per_line, tree)
    return _analyze_tree(tree, path, _select_rules(select, ignore),
                         per_line, file_wide)


def _run_project_pass(parsed: Sequence[Tuple[str, ast.Module]],
                      suppressions: Dict[str, Suppressions],
                      rules: Sequence[Rule]) -> List[Finding]:
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if not project_rules or not parsed:
        return []
    model = ProjectModel.build(list(parsed))
    context = ProjectContext(model)
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(context):
            per_line, file_wide = suppressions.get(
                finding.path, ({}, set()))
            if not _suppressed(finding, per_line, file_wide):
                findings.append(finding)
    return sorted(findings)


def analyze_sources(sources: Sequence[Tuple[str, str]],
                    select: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None,
                    cache: Optional[object] = None) -> List[Finding]:
    """Analyze ``(display_path, source)`` pairs: both passes.

    This is the in-memory core shared by :func:`analyze_paths` and the
    test suite.  ``cache`` is a
    :class:`~.cache.LintCache` (or None); per-file results are reused
    by content hash and the project pass by the combined tree hash.
    """
    rules = _select_rules(select, ignore)
    findings: List[Finding] = []
    parsed: List[Tuple[str, ast.Module]] = []
    suppressions: Dict[str, Suppressions] = {}
    file_hashes: List[Tuple[str, str]] = []
    # Files whose per-file findings came from cache; parse lazily only
    # if the project pass misses.
    pending: List[Tuple[str, str]] = []

    for path, source in sources:
        content_hash = ""
        if cache is not None:
            content_hash = cache.content_hash(source)
            file_hashes.append((path, content_hash))
            cached = cache.get_file(path, content_hash)
            if cached is not None:
                findings.extend(cached)
                pending.append((path, source))
                continue
        file_findings, tree, supp = _analyze_one(source, path, rules)
        findings.extend(file_findings)
        if tree is not None:
            parsed.append((path, tree))
            suppressions[path] = supp
        if cache is not None:
            cache.set_file(path, content_hash, file_findings)

    has_project_rules = any(isinstance(r, ProjectRule) for r in rules)
    if has_project_rules:
        project_findings: Optional[List[Finding]] = None
        project_hash = ""
        if cache is not None:
            project_hash = cache.project_hash(file_hashes)
            project_findings = cache.get_project(project_hash)
        if project_findings is None:
            for path, source in pending:
                _, tree, supp = _parse_only(source, path)
                if tree is not None:
                    parsed.append((path, tree))
                    suppressions[path] = supp
            parsed.sort(key=lambda pair: pair[0])
            project_findings = _run_project_pass(parsed, suppressions,
                                                 rules)
            if cache is not None:
                cache.set_project(project_hash, project_findings)
        findings.extend(project_findings)

    if cache is not None:
        cache.save(analyzed_paths=[path for path, _ in sources])
    return sorted(findings)


def _parse_only(source: str, path: str
                ) -> Tuple[List[Finding], Optional[ast.Module],
                           Suppressions]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 1) - 1, rule=PARSE_ERROR,
                          message=f"file does not parse: {exc.msg}")
        return [finding], None, ({}, set())
    per_line, file_wide = parse_suppressions(source)
    per_line = expand_suppressions(per_line, tree)
    return [], tree, (per_line, file_wide)


def _analyze_one(source: str, path: str, rules: Sequence[Rule]
                 ) -> Tuple[List[Finding], Optional[ast.Module],
                            Suppressions]:
    parse_findings, tree, supp = _parse_only(source, path)
    if tree is None:
        return parse_findings, None, supp
    per_line, file_wide = supp
    return (_analyze_tree(tree, path, rules, per_line, file_wide),
            tree, supp)


def _display_path(filename: str, root: Optional[str]) -> str:
    if root is not None:
        try:
            rel = os.path.relpath(filename, root)
        except ValueError:  # different drive on Windows
            rel = filename
        if not rel.startswith(".."):
            filename = rel
    return filename.replace(os.sep, "/")


def analyze_file(filename: str, root: Optional[str] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None
                 ) -> List[Finding]:
    """Analyze one file; the display path is made relative to ``root``."""
    with open(filename, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, _display_path(filename, root),
                          select=select, ignore=ignore)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        else:
            found.append(path)
    return sorted(dict.fromkeys(found))


def analyze_paths(paths: Sequence[str], root: Optional[str] = None,
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None,
                  cache: Optional[object] = None) -> List[Finding]:
    """Analyze every ``.py`` file reachable from ``paths``.

    Runs the per-file rules on each file and the project rules once
    over the linked set.
    """
    sources: List[Tuple[str, str]] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            sources.append((_display_path(filename, root),
                            handle.read()))
    return analyze_sources(sources, select=select, ignore=ignore,
                           cache=cache)
