"""File walking, suppression comments, and rule dispatch.

Suppression syntax (mirrors the familiar ``noqa`` shape):

* ``some_code()  # woltlint: disable=W001`` — suppresses the listed
  rule(s) on that line.
* A standalone ``# woltlint: disable=W003`` comment line also covers
  the next line, so a suppression can sit above the statement it
  excuses together with its justification.
* ``# woltlint: disable-file=W005`` anywhere in a file suppresses the
  rule(s) for the whole file.

Multiple rules are comma-separated (``disable=W001,W002``); anything
after the rule list (a justification) is ignored by the parser but
strongly encouraged for readers.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding
from .rules import RULES, Rule

__all__ = ["analyze_source", "analyze_file", "analyze_paths",
           "iter_python_files", "parse_suppressions"]

#: Rule code for files the parser rejects.
PARSE_ERROR = "E001"

_SUPPRESS_RE = re.compile(
    r"#\s*woltlint:\s*(disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z]\d{3}(?:\s*,\s*[A-Za-z]\d{3})*)")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules",
              ".mypy_cache", ".ruff_cache", ".pytest_cache"}


def parse_suppressions(source: str):
    """Extract suppression comments from ``source``.

    Returns:
        ``(per_line, file_wide)`` where ``per_line`` maps a 1-based line
        number to the set of rule codes disabled on it and ``file_wide``
        is the set of codes disabled for the whole file.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return per_line, file_wide
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip().upper()
                 for c in match.group("rules").split(",")}
        if match.group(1) == "disable-file":
            file_wide |= codes
            continue
        line = tok.start[0]
        per_line.setdefault(line, set()).update(codes)
        standalone = tok.line[:tok.start[1]].strip() == ""
        if standalone:
            # A comment-only line excuses the statement below it.
            per_line.setdefault(line + 1, set()).update(codes)
    return per_line, file_wide


def _select_rules(select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    codes = set(RULES)
    if select is not None:
        codes &= {c.upper() for c in select}
    if ignore is not None:
        codes -= {c.upper() for c in ignore}
    return [RULES[code]() for code in sorted(codes)]


def analyze_source(source: str, path: str,
                   select: Optional[Iterable[str]] = None,
                   ignore: Optional[Iterable[str]] = None
                   ) -> List[Finding]:
    """Run every applicable rule over one file's source text.

    ``path`` is the analysis-root-relative display path; rules also use
    it for path scoping (e.g. W003 only fires under ``core/``/``sim/``).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule=PARSE_ERROR,
                        message=f"file does not parse: {exc.msg}")]
    per_line, file_wide = parse_suppressions(source)
    findings: List[Finding] = []
    for rule in _select_rules(select, ignore):
        if not rule.applies_to(path):
            continue
        for finding in rule.check(tree, path):
            if finding.rule in file_wide:
                continue
            if finding.rule in per_line.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings)


def _display_path(filename: str, root: Optional[str]) -> str:
    if root is not None:
        try:
            rel = os.path.relpath(filename, root)
        except ValueError:  # different drive on Windows
            rel = filename
        if not rel.startswith(".."):
            filename = rel
    return filename.replace(os.sep, "/")


def analyze_file(filename: str, root: Optional[str] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None
                 ) -> List[Finding]:
    """Analyze one file; the display path is made relative to ``root``."""
    with open(filename, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, _display_path(filename, root),
                          select=select, ignore=ignore)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        else:
            found.append(path)
    return sorted(dict.fromkeys(found))


def analyze_paths(paths: Sequence[str], root: Optional[str] = None,
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None
                  ) -> List[Finding]:
    """Analyze every ``.py`` file reachable from ``paths``."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        findings.extend(analyze_file(filename, root=root,
                                     select=select, ignore=ignore))
    return sorted(findings)
