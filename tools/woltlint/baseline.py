"""The grandfathering baseline: a per-(file, rule) finding ratchet.

The baseline records, for each ``(path, rule)`` pair, how many findings
existed when the gate was introduced.  A run stays green while each
pair's count is at or below its grandfathered count; the moment a file
gains a *new* violation of a grandfathered rule, every finding for that
pair is reported (the old ones included, so the author sees the full
picture).  Line numbers are deliberately not recorded — they drift with
every edit, while counts only move when violations are added or fixed.

``--update-baseline`` regenerates the file; shrinking it (by fixing
grandfathered findings) is always welcome and never breaks the gate.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = ["Baseline", "apply_baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """Grandfathered finding counts keyed by ``path::rule``."""

    counts: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def _key(path: str, rule: str) -> str:
        return f"{path}::{rule}"

    def allowance(self, path: str, rule: str) -> int:
        return self.counts.get(self._key(path, rule), 0)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counter = Counter(f.key for f in findings)
        return cls(counts={cls._key(path, rule): n
                           for (path, rule), n in sorted(counter.items())})

    @classmethod
    def load(cls, filename: str) -> "Baseline":
        with open(filename, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r}"
                f" in {filename}")
        counts = payload.get("entries", {})
        if not all(isinstance(v, int) and v >= 0
                   for v in counts.values()):
            raise ValueError(f"corrupt baseline entries in {filename}")
        return cls(counts=dict(counts))

    def save(self, filename: str) -> None:
        # Written atomically (temp file + os.replace) so an interrupted
        # --update-baseline never leaves a torn baseline that would
        # break every subsequent gate run.  Inlined rather than imported
        # from repro.sim.checkpoint: the lint gate runs without the
        # package on sys.path.
        payload = {"version": _VERSION,
                   "entries": dict(sorted(self.counts.items()))}
        directory = os.path.dirname(os.path.abspath(filename))
        fd, tmp = tempfile.mkstemp(dir=directory,
                                   prefix=".baseline-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=False)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, filename)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def is_empty(self) -> bool:
        return not self.counts


def apply_baseline(findings: Sequence[Finding], baseline: Baseline
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (reported, n_grandfathered).

    A ``(path, rule)`` group whose size fits the grandfathered count is
    silenced entirely; a group that outgrew its allowance is reported in
    full so the offending file shows every violation at once.
    """
    groups: Dict[Tuple[str, str], List[Finding]] = {}
    for finding in findings:
        groups.setdefault(finding.key, []).append(finding)
    reported: List[Finding] = []
    grandfathered = 0
    for (path, rule), group in sorted(groups.items()):
        if len(group) <= baseline.allowance(path, rule):
            grandfathered += len(group)
        else:
            reported.extend(group)
    return sorted(reported), grandfathered
