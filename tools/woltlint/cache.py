"""Content-hash result caching for warm woltlint runs.

The cache maps each analyzed file's content hash to its (already
suppression-filtered) findings, plus one combined hash for the whole
project pass.  A warm run over an unchanged tree therefore skips
parsing and rule execution entirely — it hashes file contents, finds
every hash unchanged, and replays the stored findings.

Correctness over speed:

* The cache is **salted** with a digest of the woltlint package's own
  source files and the active select/ignore sets.  Editing any rule,
  the dataflow engine, or the CLI selection invalidates every entry at
  once — a stale cache can never hide a finding a newer rule would
  produce.
* Entries are keyed by content hash, not mtime, so ``git checkout`` /
  ``touch`` churn does not cause spurious misses (or worse, hits).
* The project-pass entry hashes the *set* of analyzed files and each
  file's content, so adding, removing, or renaming a file invalidates
  the cross-module findings even when every surviving file is
  unchanged.

Failure handling is deliberately lax: an unreadable or corrupt cache
file behaves like an empty cache, and save errors are swallowed — the
cache must never turn a lint run into a failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding, WrapFix

__all__ = ["LintCache", "DEFAULT_CACHE_FILE", "tool_salt"]

DEFAULT_CACHE_FILE = ".woltlint_cache.json"

_CACHE_VERSION = 2


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def tool_salt(select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None) -> str:
    """Digest of the woltlint sources plus the rule selection."""
    digest = hashlib.sha256()
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for name in sorted(os.listdir(package_dir)):
        if not name.endswith(".py"):
            continue
        digest.update(name.encode("utf-8"))
        try:
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(_sha256(handle.read()).encode("ascii"))
        except OSError:  # pragma: no cover - unreadable own source
            digest.update(b"?")
    digest.update(repr(sorted(select or ())).encode("utf-8"))
    digest.update(repr(sorted(ignore or ())).encode("utf-8"))
    return digest.hexdigest()


def _finding_to_dict(finding: Finding) -> dict:
    entry = finding.to_json()
    if finding.fix is not None:
        fix = finding.fix
        entry["fix"] = [fix.start_line, fix.start_col, fix.end_line,
                        fix.end_col, fix.before, fix.after]
    return entry


def _finding_from_dict(entry: dict) -> Finding:
    fix = None
    raw = entry.get("fix")
    if isinstance(raw, list) and len(raw) == 6:
        fix = WrapFix(start_line=int(raw[0]), start_col=int(raw[1]),
                      end_line=int(raw[2]), end_col=int(raw[3]),
                      before=str(raw[4]), after=str(raw[5]))
    return Finding(path=str(entry["path"]), line=int(entry["line"]),
                   col=int(entry["col"]), rule=str(entry["rule"]),
                   message=str(entry["message"]), fix=fix)


class LintCache:
    """One on-disk cache file, bound to a salt at load time."""

    def __init__(self, path: str, salt: str) -> None:
        self.path = path
        self.salt = salt
        self._files: Dict[str, dict] = {}
        self._project: Optional[dict] = None
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("version") != _CACHE_VERSION \
                or data.get("salt") != self.salt:
            return  # stale tool version / selection: start empty
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files
        project = data.get("project")
        if isinstance(project, dict):
            self._project = project

    # -- hashing -------------------------------------------------------

    @staticmethod
    def content_hash(source: str) -> str:
        return _sha256(source.encode("utf-8"))

    @staticmethod
    def project_hash(file_hashes: Sequence[Tuple[str, str]]) -> str:
        digest = hashlib.sha256()
        for path, content_hash in sorted(file_hashes):
            digest.update(path.encode("utf-8"))
            digest.update(content_hash.encode("ascii"))
        return digest.hexdigest()

    # -- per-file entries ----------------------------------------------

    def get_file(self, path: str,
                 content_hash: str) -> Optional[List[Finding]]:
        entry = self._files.get(path)
        if entry is None or entry.get("hash") != content_hash:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_dict(e)
                        for e in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def set_file(self, path: str, content_hash: str,
                 findings: Sequence[Finding]) -> None:
        self._files[path] = {
            "hash": content_hash,
            "findings": [_finding_to_dict(f) for f in findings]}

    # -- project entry -------------------------------------------------

    def get_project(self,
                    project_hash: str) -> Optional[List[Finding]]:
        entry = self._project
        if entry is None or entry.get("hash") != project_hash:
            return None
        try:
            return [_finding_from_dict(e)
                    for e in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None

    def set_project(self, project_hash: str,
                    findings: Sequence[Finding]) -> None:
        self._project = {
            "hash": project_hash,
            "findings": [_finding_to_dict(f) for f in findings]}

    # -- persistence ---------------------------------------------------

    def save(self, analyzed_paths: Optional[Sequence[str]] = None
             ) -> None:
        """Atomically persist, dropping entries for vanished files."""
        if analyzed_paths is not None:
            keep = set(analyzed_paths)
            self._files = {p: e for p, e in self._files.items()
                           if p in keep}
        payload = {"version": _CACHE_VERSION, "salt": self.salt,
                   "files": self._files, "project": self._project}
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd, tmp = tempfile.mkstemp(dir=directory,
                                       prefix=".woltlint_cache.")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a cache that cannot be written is just a cold cache
