"""Command-line front end: ``python -m tools.woltlint src tests``.

Exit status: 0 — clean (after inline suppressions and the baseline);
1 — findings reported; 2 — usage or I/O error, or a refused
``--update-baseline`` that would have masked new findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter
from typing import Dict, List, Optional, Sequence

from . import __version__
from .analyzer import analyze_paths
from .baseline import Baseline, apply_baseline
from .cache import DEFAULT_CACHE_FILE, LintCache, tool_salt
from .findings import Finding
from .fixers import fix_files, fixable
from .rules import RULES
from .sarif import to_sarif

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: The checked-in baseline shipping next to the tool.
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="woltlint",
        description=("AST-based invariant checker for the WOLT "
                     "reproduction (see docs/STATIC_ANALYSIS.md)"))
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze "
                             "(default: src tests)")
    parser.add_argument("--root", default=".",
                        help="directory finding paths are reported "
                             "relative to (default: cwd; run from the "
                             "repo root so baseline paths match)")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", help="output format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of "
                             "stdout")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in "
                             "tools/woltlint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline and report every "
                             "finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings and exit 0; refuses to GROW any "
                             "(path, rule) count unless "
                             "--allow-baseline-growth is also given")
    parser.add_argument("--allow-baseline-growth", action="store_true",
                        help="let --update-baseline record more "
                             "findings than the previous baseline "
                             "allowed (normally refused: growing the "
                             "baseline masks new violations)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (sorted() wraps) "
                             "for reported findings, then re-analyze")
    parser.add_argument("--cache", action="store_true",
                        help="reuse per-file results across runs via "
                             f"{DEFAULT_CACHE_FILE} (content-hash "
                             "keyed; any woltlint source change "
                             "invalidates it)")
    parser.add_argument("--cache-file", metavar="FILE",
                        help="cache file location (implies --cache)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code} {rule.name}: {rule.description}")
        lines.append(f"     rationale: {rule.rationale}")
    return "\n".join(lines)


def _emit_human(reported: List[Finding], grandfathered: int,
                stream) -> None:
    for finding in reported:
        print(finding.render(), file=stream)
    summary = (f"woltlint: {len(reported)} finding(s)"
               if reported else "woltlint: clean")
    if grandfathered:
        summary += f" ({grandfathered} grandfathered by baseline)"
    print(summary, file=stream)


def _emit_json(reported: List[Finding], grandfathered: int,
               stream) -> None:
    payload = {
        "version": 1,
        "findings": [f.to_json() for f in reported],
        "summary": {"reported": len(reported),
                    "grandfathered": grandfathered},
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _emit_sarif(reported: List[Finding], stream) -> None:
    json.dump(to_sarif(reported, tool_version=__version__), stream,
              indent=2)
    stream.write("\n")


def _baseline_growth(old: Baseline,
                     findings: Sequence[Finding]) -> Dict[str, int]:
    """``path::rule`` keys whose count would grow, with the increase."""
    new_counts = Counter(f"{path}::{rule}"
                         for path, rule in (f.key for f in findings))
    growth: Dict[str, int] = {}
    for key, count in sorted(new_counts.items()):
        allowed = old.counts.get(key, 0)
        if count > allowed:
            growth[key] = count - allowed
    return growth


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"woltlint: path not found: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    cache = None
    if args.cache or args.cache_file:
        cache_file = args.cache_file or DEFAULT_CACHE_FILE
        cache = LintCache(cache_file, tool_salt(select, ignore))

    findings = analyze_paths(args.paths, root=args.root,
                             select=select, ignore=ignore, cache=cache)

    if args.fix:
        applied = fix_files(findings, root=args.root)
        if applied:
            total = sum(applied.values())
            for path, count in sorted(applied.items()):
                print(f"woltlint: fixed {count} finding(s) in {path}",
                      file=sys.stderr)
            print(f"woltlint: applied {total} fix(es); re-analyzing",
                  file=sys.stderr)
            findings = analyze_paths(args.paths, root=args.root,
                                     select=select, ignore=ignore,
                                     cache=cache)
        elif fixable(findings):
            print("woltlint: no fixes applied (stale coordinates?)",
                  file=sys.stderr)

    if args.update_baseline:
        # The growth ratchet only guards an *existing* baseline:
        # bootstrapping one from scratch is the documented first step
        # of adopting the gate, so it needs no override flag.
        previous = None
        if os.path.exists(args.baseline):
            try:
                previous = Baseline.load(args.baseline)
            except (ValueError, OSError, json.JSONDecodeError) as exc:
                print(f"woltlint: cannot read baseline: {exc}",
                      file=sys.stderr)
                return 2
        growth = {} if previous is None \
            else _baseline_growth(previous, findings)
        if growth and not args.allow_baseline_growth:
            print("woltlint: refusing to grow the baseline — the "
                  "following (path, rule) counts would increase, "
                  "masking new findings:", file=sys.stderr)
            for key, increase in sorted(growth.items()):
                print(f"  {key}: +{increase}", file=sys.stderr)
            print("woltlint: fix the findings, suppress them inline "
                  "with a justification, or pass "
                  "--allow-baseline-growth to grandfather them "
                  "deliberately.", file=sys.stderr)
            return 2
        Baseline.from_findings(findings).save(args.baseline)
        print(f"woltlint: baseline updated with {len(findings)} "
              f"finding(s) -> {args.baseline}")
        return 0

    grandfathered = 0
    reported = findings
    if not args.no_baseline and os.path.exists(args.baseline):
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"woltlint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
        reported, grandfathered = apply_baseline(findings, baseline)

    stream = sys.stdout
    close_stream = False
    if args.output:
        try:
            # woltlint: disable=W008 — a lint report is not a resumable
            # artifact: nothing trusts a torn one, and the next run
            # rewrites it from scratch.
            stream = open(args.output, "w", encoding="utf-8")
        except OSError as exc:
            print(f"woltlint: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
        close_stream = True
    try:
        if args.format == "json":
            _emit_json(reported, grandfathered, stream)
        elif args.format == "sarif":
            _emit_sarif(reported, stream)
        else:
            _emit_human(reported, grandfathered, stream)
    finally:
        if close_stream:
            stream.close()
    return 1 if reported else 0
