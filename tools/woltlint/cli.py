"""Command-line front end: ``python -m tools.woltlint src tests``.

Exit status: 0 — clean (after inline suppressions and the baseline);
1 — findings reported; 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .analyzer import analyze_paths
from .baseline import Baseline, apply_baseline
from .findings import Finding
from .rules import RULES

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: The checked-in baseline shipping next to the tool.
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="woltlint",
        description=("AST-based invariant checker for the WOLT "
                     "reproduction (see docs/STATIC_ANALYSIS.md)"))
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze "
                             "(default: src tests)")
    parser.add_argument("--root", default=".",
                        help="directory finding paths are reported "
                             "relative to (default: cwd; run from the "
                             "repo root so baseline paths match)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in "
                             "tools/woltlint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline and report every "
                             "finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings and exit 0")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code} {rule.name}: {rule.description}")
        lines.append(f"     rationale: {rule.rationale}")
    return "\n".join(lines)


def _emit_human(reported: List[Finding], grandfathered: int,
                stream) -> None:
    for finding in reported:
        print(finding.render(), file=stream)
    summary = (f"woltlint: {len(reported)} finding(s)"
               if reported else "woltlint: clean")
    if grandfathered:
        summary += f" ({grandfathered} grandfathered by baseline)"
    print(summary, file=stream)


def _emit_json(reported: List[Finding], grandfathered: int,
               stream) -> None:
    payload = {
        "version": 1,
        "findings": [f.to_json() for f in reported],
        "summary": {"reported": len(reported),
                    "grandfathered": grandfathered},
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"woltlint: path not found: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths, root=args.root,
                             select=select, ignore=ignore)
    if args.update_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"woltlint: baseline updated with {len(findings)} "
              f"finding(s) -> {args.baseline}")
        return 0
    grandfathered = 0
    reported = findings
    if not args.no_baseline and os.path.exists(args.baseline):
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"woltlint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
        reported, grandfathered = apply_baseline(findings, baseline)
    if args.format == "json":
        _emit_json(reported, grandfathered, sys.stdout)
    else:
        _emit_human(reported, grandfathered, sys.stdout)
    return 1 if reported else 0
