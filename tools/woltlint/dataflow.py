"""Flow-sensitive tag propagation for the W010+ rules.

The cross-module rules all reduce to the same question: *does a value
with property P reach a sink of kind S?*  This module answers the
intra-function half.  A :class:`FunctionFlow` walks one function body
in statement order, propagating a small set of origin **tags** through
assignments, and records, for every call site, the tags each argument
carried when the call was evaluated.  Rules then pattern-match the
call sites against their own sinks (``submit``, payload constructors,
``fingerprint``, journal appends) without re-implementing the
propagation.

Tags:

* ``rng`` — a ``numpy`` ``Generator`` (``default_rng(...)`` result, or
  a parameter named/annotated as one);
* ``seedseq`` — a ``SeedSequence`` or a ``.spawn()`` child;
* ``rng-raw-seed`` — an RNG whose seed did *not* come from a
  SeedSequence chain (constant or arithmetic seed);
* ``unordered`` — a value with no deterministic iteration order
  (``set`` literals/calls/comprehensions, ``frozenset``, set algebra,
  ``dict.keys()/.values()/.items()`` views);
* ``wallclock`` — a wall-clock reading (``time.time()``,
  ``datetime.now()``, ...), including values derived from one by
  arithmetic;
* ``lock`` / ``handle`` — ``threading`` synchronization primitives and
  open file handles (unpicklable across a pool boundary).

The pass is flow-sensitive: reassigning a name replaces its tags, and
``sorted(...)`` launders ``unordered``.  Loop bodies are visited
twice, so a tag acquired late in the body still reaches sinks at the
top on the second visit (a cheap fixpoint that is exact for the
two-phase patterns this repo uses).  Branches join by union — a value
that *may* be tainted stays tainted.  Nested function and lambda
bodies are separate scopes and are skipped (they get their own
:class:`FunctionFlow` when a rule cares).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["TAG_RNG", "TAG_SEEDSEQ", "TAG_RNG_RAW", "TAG_UNORDERED",
           "TAG_WALLCLOCK", "TAG_LOCK", "TAG_HANDLE", "CallSite",
           "LoopSite", "FunctionFlow", "dotted_name"]

TAG_RNG = "rng"
TAG_SEEDSEQ = "seedseq"
TAG_RNG_RAW = "rng-raw-seed"
TAG_UNORDERED = "unordered"
TAG_WALLCLOCK = "wallclock"
TAG_LOCK = "lock"
TAG_HANDLE = "handle"

#: Wall-clock reading functions, matched on their trailing attribute.
_WALLCLOCK_TAILS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "now", "utcnow", "today",
})

#: ``threading``/``multiprocessing`` primitives that cannot cross a
#: pickle boundary.
_LOCK_NAMES = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
    "Condition", "Barrier",
})

#: Open-handle producers.
_HANDLE_TAILS = frozenset({"open", "fdopen", "popen", "socket",
                           "TemporaryFile", "NamedTemporaryFile"})

#: dict/set view accessors with no stable cross-run order guarantee in
#: the presence of nondeterministic insertion (completion-order fills).
_VIEW_TAILS = frozenset({"keys", "values", "items"})

#: Calls that launder the ``unordered`` tag.
_ORDERING_CALLS = frozenset({"sorted", "min", "max", "sum", "len",
                             "frozenset_sorted"})

#: Calls that preserve their first argument's tags.
_TRANSPARENT_CALLS = frozenset({"list", "tuple", "iter", "reversed",
                                "enumerate", "deepcopy", "copy"})


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as parts; None for anything not a dotted name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call in the analyzed function, with argument tags.

    ``arg_tags`` aligns with positional args; ``kwarg_tags`` maps
    keyword names (``None`` for ``**kwargs``) to tags.  Tags are the
    union over every visit of the site (loop bodies are visited
    twice).
    """

    node: ast.Call
    arg_tags: List[Set[str]] = field(default_factory=list)
    kwarg_tags: List[Tuple[Optional[str], Set[str]]] = \
        field(default_factory=list)

    def any_arg_tagged(self, tag: str) -> bool:
        return any(tag in tags for tags in self.arg_tags) or \
            any(tag in tags for _, tags in self.kwarg_tags)

    def tagged_args(self, tag: str) -> Iterable[ast.AST]:
        for expr, tags in zip(self.node.args, self.arg_tags):
            if tag in tags:
                yield expr
        for kw, (_, tags) in zip(self.node.keywords, self.kwarg_tags):
            if tag in tags:
                yield kw.value


@dataclass
class LoopSite:
    """One ``for`` loop (or comprehension) with its iterable's tags."""

    node: ast.AST  # ast.For or a comprehension owner
    iter_node: ast.AST
    iter_tags: Set[str]
    is_comprehension: bool = False


class FunctionFlow:
    """Forward tag propagation over one function (or module) body.

    Args:
        node: a function definition or a module; its immediate body is
            analyzed (nested functions/lambdas are skipped).
        extra_param_tags: overrides/additions to the default parameter
            tagging (name -> tags).
    """

    def __init__(self, node: ast.AST,
                 extra_param_tags: Optional[Dict[str, Set[str]]] = None
                 ) -> None:
        self.node = node
        self.env: Dict[str, Set[str]] = {}
        self._sites: Dict[int, CallSite] = {}
        self.loops: List[LoopSite] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._seed_params(node)
        if extra_param_tags:
            for name, tags in extra_param_tags.items():
                self.env.setdefault(name, set()).update(tags)
        body = node.body if hasattr(node, "body") else []
        self._visit_body(body)

    # -- results -------------------------------------------------------

    @property
    def call_sites(self) -> List[CallSite]:
        return list(self._sites.values())

    # -- parameter seeding ---------------------------------------------

    def _seed_params(self, node: ast.AST) -> None:
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + [a for a in (args.vararg, args.kwarg) if a]):
            tags = self._param_tags(arg)
            if tags:
                self.env[arg.arg] = tags

    @staticmethod
    def _param_tags(arg: ast.arg) -> Set[str]:
        annotation = ""
        if arg.annotation is not None:
            try:
                annotation = ast.unparse(arg.annotation)
            except Exception:  # pragma: no cover - malformed annotation
                annotation = ""
        name = arg.arg.lower()
        if "Generator" in annotation or name == "rng" \
                or name.endswith("_rng"):
            return {TAG_RNG}
        if "SeedSequence" in annotation or "seq" in name.split("_"):
            return {TAG_SEEDSEQ}
        if name.endswith("_seq") or name.endswith("_seqs") \
                or "seedseq" in name:
            return {TAG_SEEDSEQ}
        return set()

    # -- statement walk ------------------------------------------------

    def _visit_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate scope
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, tags, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value),
                             stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(tags)
            self._eval(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self._eval(stmt.iter)
            self.loops.append(LoopSite(node=stmt, iter_node=stmt.iter,
                                       iter_tags=set(iter_tags)))
            element = set()
            if TAG_SEEDSEQ in iter_tags:
                element.add(TAG_SEEDSEQ)
            self._assign(stmt.target, element, None)
            # Two visits: a cheap fixpoint for loop-carried tags.
            self._visit_body(stmt.body)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = {k: set(v) for k, v in self.env.items()}
            self._visit_body(stmt.body)
            after_body = self.env
            self.env = before
            self._visit_body(stmt.orelse)
            for name, tags in after_body.items():
                self.env.setdefault(name, set()).update(tags)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tags,
                                 item.context_expr)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do.

    def _assign(self, target: ast.AST, tags: Set[str],
                value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # spawn(2) unpacked into two names: each child is a
            # SeedSequence; otherwise propagate the value tags to all.
            for element in target.elts:
                self._assign(element, tags, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value)

    # -- expression evaluation -----------------------------------------

    def _eval(self, expr: Optional[ast.AST]) -> Set[str]:
        if expr is None:
            return set()
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            base = self._eval(expr.value)
            attr = expr.attr.lower()
            tags: Set[str] = set()
            if attr.endswith("_seq") or attr.endswith("_seqs") \
                    or "seedseq" in attr or attr == "seq":
                tags.add(TAG_SEEDSEQ)
            if attr == "rng" or attr.endswith("_rng"):
                tags.add(TAG_RNG)
            if TAG_SEEDSEQ in base and attr in ("spawn_key",):
                tags.add(TAG_SEEDSEQ)
            return tags
        if isinstance(expr, (ast.Set,)):
            for element in expr.elts:
                self._eval(element)
            return {TAG_UNORDERED}
        if isinstance(expr, ast.SetComp):
            self._eval_comprehension(expr)
            return {TAG_UNORDERED}
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.DictComp):
            self._eval_comprehension(expr)
            return set()
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return left | right
        if isinstance(expr, ast.BoolOp):
            tags = set()
            for value in expr.values:
                tags |= self._eval(value)
            return tags
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            base = self._eval(expr.value)
            # Indexing keeps element-producing tags (a spawn list's
            # element is a SeedSequence) but not container shape tags.
            return base - {TAG_UNORDERED}
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            tags = set()
            for element in expr.elts:
                tags |= self._eval(element)
            return tags
        if isinstance(expr, ast.Dict):
            # A dict literal iterates in insertion order, so it is not
            # UNORDERED itself — but value tags (a wall-clock stamp, a
            # lock) travel with it into whatever consumes the dict.
            tags = set()
            for key in expr.keys:
                if key is not None:
                    tags |= self._eval(key)
            for value in expr.values:
                tags |= self._eval(value)
            return tags - {TAG_UNORDERED}
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return set()
        if isinstance(expr, ast.Lambda):
            return set()  # separate scope
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for sub in ast.iter_child_nodes(expr):
                self._eval(sub) if isinstance(sub, ast.expr) else None
            return set()
        if isinstance(expr, ast.NamedExpr):
            tags = self._eval(expr.value)
            self._assign(expr.target, tags, expr.value)
            return tags
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        return set()

    def _eval_comprehension(self, expr: ast.AST) -> Set[str]:
        tags_through: Set[str] = set()
        for comp in expr.generators:
            iter_tags = self._eval(comp.iter)
            self.loops.append(LoopSite(node=expr, iter_node=comp.iter,
                                       iter_tags=set(iter_tags),
                                       is_comprehension=True))
            element = set()
            if TAG_SEEDSEQ in iter_tags:
                element.add(TAG_SEEDSEQ)
            if TAG_UNORDERED in iter_tags:
                tags_through.add(TAG_UNORDERED)
            self._assign(comp.target, element, None)
            for cond in comp.ifs:
                self._eval(cond)
        if isinstance(expr, ast.DictComp):
            self._eval(expr.key)
            self._eval(expr.value)
        else:
            self._eval(expr.elt)
        return tags_through

    # -- calls ---------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Set[str]:
        arg_tags = [self._eval(arg) for arg in node.args]
        kwarg_tags = [(kw.arg, self._eval(kw.value))
                      for kw in node.keywords]
        site = self._sites.get(id(node))
        if site is None:
            site = CallSite(node=node, arg_tags=arg_tags,
                            kwarg_tags=kwarg_tags)
            self._sites[id(node)] = site
        else:
            for tags, new in zip(site.arg_tags, arg_tags):
                tags |= new
            for (_, tags), (_, new) in zip(site.kwarg_tags, kwarg_tags):
                tags |= new
        return self._result_tags(node, arg_tags)

    def _result_tags(self, node: ast.Call,
                     arg_tags: List[Set[str]]) -> Set[str]:
        parts = dotted_name(node.func)
        if parts is None:
            # e.g. chained call ``Path(p).open()``: classify by attr.
            if isinstance(node.func, ast.Attribute):
                parts = ["<expr>", node.func.attr]
            else:
                return set()
        tail = parts[-1]
        if tail == "default_rng":
            seed_tags = arg_tags[0] if arg_tags else set()
            tags = {TAG_RNG}
            if node.args and TAG_SEEDSEQ not in seed_tags:
                tags.add(TAG_RNG_RAW)
            return tags
        if tail == "SeedSequence":
            return {TAG_SEEDSEQ}
        if tail == "spawn":
            # ``.spawn`` is distinctive enough on its own; the
            # receiver is often an attribute chain we cannot tag.
            return {TAG_SEEDSEQ}
        if tail in ("set", "frozenset"):
            return {TAG_UNORDERED}
        if tail in _VIEW_TAILS and isinstance(node.func, ast.Attribute):
            return {TAG_UNORDERED}
        if tail in ("union", "intersection", "difference",
                    "symmetric_difference") \
                and isinstance(node.func, ast.Attribute):
            base = self._eval(node.func.value)
            if TAG_UNORDERED in base:
                return {TAG_UNORDERED}
            return set()
        if tail in _ORDERING_CALLS:
            return set()
        if tail in _TRANSPARENT_CALLS:
            return set(arg_tags[0]) if arg_tags else set()
        if tail in _WALLCLOCK_TAILS and len(parts) >= 2 \
                and parts[0] in ("time", "datetime", "dt"):
            return {TAG_WALLCLOCK}
        if tail in _LOCK_NAMES:
            return {TAG_LOCK}
        if tail in _HANDLE_TAILS:
            return {TAG_HANDLE}
        return set()
