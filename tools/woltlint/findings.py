"""The finding record shared by the analyzer, rules, and reporters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: file path, ``/``-separated, relative to the analysis root.
        line: 1-based source line.
        col: 0-based source column.
        rule: rule code (``W001`` ... ``W006``, or ``E001`` for files
            that fail to parse).
        message: human-readable description with the suggested fix.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def key(self) -> Tuple[str, str]:
        """Baseline grouping key: findings ratchet per (path, rule)."""
        return (self.path, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}
