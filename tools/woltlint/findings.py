"""The finding record shared by the analyzer, rules, and reporters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class WrapFix:
    """A mechanical source edit: wrap an expression span in text.

    The span is ``(start_line, start_col)``..``(end_line, end_col)``
    (1-based lines, 0-based cols, end exclusive); applying the fix
    inserts ``before`` at the start and ``after`` at the end —
    e.g. ``sorted(`` ... ``)`` around a set-typed iterable.  See
    :mod:`tools.woltlint.fixers`.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    before: str
    after: str


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: file path, ``/``-separated, relative to the analysis root.
        line: 1-based source line.
        col: 0-based source column.
        rule: rule code (``W001`` ... , or ``E001`` for files
            that fail to parse).
        message: human-readable description with the suggested fix.
        fix: optional mechanical edit ``--fix`` can apply (excluded
            from ordering and serialized output).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fix: Optional[WrapFix] = field(default=None, compare=False)

    @property
    def key(self) -> Tuple[str, str]:
        """Baseline grouping key: findings ratchet per (path, rule)."""
        return (self.path, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}
