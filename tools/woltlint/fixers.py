"""The ``--fix`` autofixer: apply mechanical :class:`WrapFix` edits.

Only rules whose repair is purely mechanical attach a fix — today that
is W012's ``sorted(...)`` wrap around an unordered iterable or
serialized argument.  Everything else stays a human decision: woltlint
must never rewrite seeding discipline or pool payloads on its own.

Fixes are applied per file, bottom-up (descending start position), so
earlier edits never shift the coordinates of later ones.  Overlapping
fixes are skipped after the first — the next lint run re-offers them
against fresh coordinates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .findings import Finding, WrapFix

__all__ = ["apply_wrap_fixes", "fix_files", "fixable"]


def fixable(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of findings carrying a mechanical fix."""
    return [f for f in findings if f.fix is not None]


def _spans_overlap(a: WrapFix, b: WrapFix) -> bool:
    a_start, a_end = (a.start_line, a.start_col), (a.end_line, a.end_col)
    b_start, b_end = (b.start_line, b.start_col), (b.end_line, b.end_col)
    return a_start < b_end and b_start < a_end


def apply_wrap_fixes(source: str,
                     fixes: Sequence[WrapFix]) -> Tuple[str, int]:
    """Apply non-overlapping fixes to ``source``.

    Returns:
        ``(new_source, n_applied)``.  Fixes whose coordinates fall
        outside the current text (stale cache, concurrent edit) are
        skipped rather than corrupting the file.
    """
    lines = source.splitlines(keepends=True)
    accepted: List[WrapFix] = []
    for fix in sorted(fixes, key=lambda f: (f.start_line, f.start_col)):
        if any(_spans_overlap(fix, other) for other in accepted):
            continue
        accepted.append(fix)
    applied = 0
    # Bottom-up so earlier edits keep later coordinates valid.
    for fix in sorted(accepted,
                      key=lambda f: (f.start_line, f.start_col),
                      reverse=True):
        if not (1 <= fix.start_line <= len(lines)
                and 1 <= fix.end_line <= len(lines)):
            continue
        start_text = lines[fix.start_line - 1]
        end_text = lines[fix.end_line - 1]
        if fix.start_col > len(start_text) \
                or fix.end_col > len(end_text):
            continue
        # Insert the tail first: on the same line, inserting the head
        # first would shift the tail column.
        end_line_text = lines[fix.end_line - 1]
        lines[fix.end_line - 1] = (end_line_text[:fix.end_col]
                                   + fix.after
                                   + end_line_text[fix.end_col:])
        start_line_text = lines[fix.start_line - 1]
        lines[fix.start_line - 1] = (start_line_text[:fix.start_col]
                                     + fix.before
                                     + start_line_text[fix.start_col:])
        applied += 1
    return "".join(lines), applied


def fix_files(findings: Sequence[Finding],
              root: str = ".") -> Dict[str, int]:
    """Apply every attached fix, grouped per display path.

    Returns:
        mapping of display path to the number of fixes applied there.
    """
    import os

    by_path: Dict[str, List[WrapFix]] = {}
    for finding in fixable(findings):
        by_path.setdefault(finding.path, []).append(finding.fix)
    applied: Dict[str, int] = {}
    for path in sorted(by_path):
        filename = os.path.join(root, path.replace("/", os.sep))
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        new_source, count = apply_wrap_fixes(source, by_path[path])
        if count and new_source != source:
            with open(filename, "w", encoding="utf-8") as handle:
                handle.write(new_source)
            applied[path] = count
    return applied
