"""The cross-module, flow-sensitive rules: W010-W013.

These are the rules the single-file pass (W001-W009) cannot express:
they consume the :class:`~tools.woltlint.projectmodel.ProjectModel`
(module graph, call graph, payload classes, fingerprint keys) and the
per-function :class:`~tools.woltlint.dataflow.FunctionFlow` tags.

* **W010 rng-flow** — generators must be constructed *inside* the
  worker from a payload-carried ``SeedSequence`` child; a ``Generator``
  captured into a pool-submitted payload, or a raw-seeded
  ``default_rng`` in worker-reachable code, silently breaks the
  workers-N == serial bit-identity contract.
* **W011 parallel-safety** — values crossing the pool boundary must be
  picklable by construction (no lambdas, closures, locks, or open
  handles), and worker-side code must not mutate the fork-inherited
  shared run config.
* **W012 order-determinism** — iteration order of ``set``s and dict
  views must never flow into journal writes, result lists, or
  fingerprints; wall-clock readings must never flow into scientific
  parameters.
* **W013 fingerprint-coverage** — every field of the run-config /
  trial-spec dataclasses must be covered by the SHA-256 run
  fingerprint (or carry an individually-justified suppression), so a
  new scientific knob cannot silently resume into old checkpoints.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from .dataflow import (TAG_HANDLE, TAG_LOCK, TAG_RNG, TAG_RNG_RAW,
                       TAG_SEEDSEQ, TAG_UNORDERED, TAG_WALLCLOCK,
                       CallSite, FunctionFlow, dotted_name)
from .findings import Finding, WrapFix
from .projectmodel import FunctionInfo, ModuleInfo, ProjectModel
from .rules import ProjectRule, register

__all__ = ["ProjectContext", "RngFlow", "ParallelSafety",
           "OrderDeterminism", "FingerprintCoverage"]


class ProjectContext:
    """The shared project-pass state handed to every project rule.

    Builds the model's per-function dataflow lazily and caches it, so
    N project rules pay for one propagation pass, not N.
    """

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._flows: Dict[str, FunctionFlow] = {}

    def flow(self, func: FunctionInfo) -> FunctionFlow:
        cached = self._flows.get(func.func_id)
        if cached is None:
            cached = FunctionFlow(func.node)
            self._flows[func.func_id] = cached
        return cached

    # -- shared queries ------------------------------------------------

    def iter_function_flows(self):
        """Deterministically ordered ``(module, func, flow)`` triples."""
        for path in sorted(self.model.by_path):
            module = self.model.by_path[path]
            for qual in sorted(module.functions):
                func = module.functions[qual]
                yield module, func, self.flow(func)

    def scope_of(self, func: FunctionInfo) -> List[str]:
        return func.func_id.split(":", 1)[1].split(".")

    def resolve_call(self, module: ModuleInfo, site: CallSite,
                     func: Optional[FunctionInfo]) -> Optional[str]:
        parts = dotted_name(site.node.func)
        if parts is None:
            return None
        scope = self.scope_of(func) if func is not None else []
        return self.model.resolve_name(module, parts, scope=scope)


# ---------------------------------------------------------------------------
# shared helpers


def _call_tail(node: ast.Call) -> Optional[str]:
    parts = dotted_name(node.func)
    if parts is not None:
        return parts[-1]
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_submit(node: ast.Call) -> bool:
    return ProjectModel._is_submit_call(node) is not None


def _span_fix(node: ast.AST, before: str, after: str
              ) -> Optional[WrapFix]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return WrapFix(start_line=node.lineno, start_col=node.col_offset,
                   end_line=end_line, end_col=end_col,
                   before=before, after=after)


# ---------------------------------------------------------------------------
# W010 — rng-flow


@register
class RngFlow(ProjectRule):
    """RNG streams must flow from SeedSequence children, end to end."""

    code = "W010"
    name = "rng-flow"
    description = ("a numpy Generator captured into a pool-submitted "
                   "payload, or a default_rng() in worker-reachable "
                   "code whose seed is not a SeedSequence child")
    rationale = ("A Generator shipped across the pool boundary freezes "
                 "whatever state the parent happened to have consumed, "
                 "so results depend on dispatch order and chunking; a "
                 "raw-seeded RNG inside a worker ties trials together "
                 "statistically.  Ship SeedSequence children in the "
                 "payload and construct the Generator in the worker "
                 "(what run_trials' _TrialSpec does).")

    def check_project(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        model = context.model
        for module, func, flow in context.iter_function_flows():
            for site in flow.call_sites:
                yield from self._check_boundary(context, module, func,
                                                site)
            if func.func_id in model.worker_reachable:
                yield from self._check_worker_rng(module, func, flow)

    def _check_boundary(self, context: ProjectContext,
                        module: ModuleInfo, func: FunctionInfo,
                        site: CallSite) -> Iterator[Finding]:
        node = site.node
        is_boundary = _is_submit(node)
        target_desc = "pool submit call"
        if not is_boundary:
            resolved = context.resolve_call(module, site, func)
            if resolved in context.model.payload_classes:
                is_boundary = True
                target_desc = (f"payload class "
                               f"{resolved.rsplit(':', 1)[1]}")
        if not is_boundary:
            return
        for expr in site.tagged_args(TAG_RNG):
            yield self.finding(
                module.path, expr,
                f"numpy Generator captured into a {target_desc} — a "
                "shipped Generator freezes parent-side stream state, "
                "so results change with dispatch order; put the "
                "SeedSequence child in the payload and call "
                "default_rng(child) inside the worker")

    def _check_worker_rng(self, module: ModuleInfo, func: FunctionInfo,
                          flow: FunctionFlow) -> Iterator[Finding]:
        for site in flow.call_sites:
            if _call_tail(site.node) != "default_rng":
                continue
            if not site.node.args and not site.node.keywords:
                continue  # W001's unseeded case; don't double-report
            seed_tags: Set[str] = set()
            if site.arg_tags:
                seed_tags = site.arg_tags[0]
            elif site.kwarg_tags:
                seed_tags = site.kwarg_tags[0][1]
            if TAG_SEEDSEQ in seed_tags:
                continue
            fn_name = func.func_id.rsplit(":", 1)[1]
            yield self.finding(
                module.path, site.node,
                f"default_rng in worker-reachable {fn_name}() is not "
                "seeded from a SeedSequence child — worker code runs "
                "under chunked dispatch, where any other seed origin "
                "(constant, arithmetic, raw int) breaks the "
                "workers=N == serial bit-identity contract; pass the "
                "payload's pre-spawned SeedSequence child")


# ---------------------------------------------------------------------------
# W011 — parallel-safety


#: Base-name fragments that mark a value as the shared run config /
#: fork-inherited registry for the worker-side mutation check.
_CONFIG_NAME_WORDS = ("config", "shared", "registry")


def _is_config_name(name: str) -> bool:
    lowered = name.lower()
    return any(word in lowered for word in _CONFIG_NAME_WORDS) \
        or lowered == "cfg"


@register
class ParallelSafety(ProjectRule):
    """Pool-crossing values must be picklable; workers must not mutate
    the fork-inherited shared config."""

    code = "W011"
    name = "parallel-safety"
    description = ("lambda/closure/lock/open-handle crossing a pool "
                   "submit or payload boundary, or worker-side "
                   "mutation of the shared run config")
    rationale = ("submit() pickles its work item in the parent and "
                 "unpickles it in the worker: lambdas and nested "
                 "functions fail at dispatch time (or, worse, only on "
                 "spawn-start platforms), and locks/handles are "
                 "process-local.  Mutating the fork-inherited config "
                 "inside a worker silently diverges that worker's view "
                 "from its siblings'.")

    def check_project(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        model = context.model
        for module, func, flow in context.iter_function_flows():
            for site in flow.call_sites:
                yield from self._check_boundary(context, module, func,
                                                site)
            if func.func_id in model.worker_reachable:
                yield from self._check_worker_mutation(module, func)
        # Module-level submits (rare, but scripts do it).
        for site in model.submit_sites:
            if site.func_id == "":
                module = model.by_path[site.path]
                yield from self._check_work_exprs(
                    context, module, None, site.node,
                    list(site.work_args), site.node.keywords)

    # -- boundary picklability -----------------------------------------

    def _check_boundary(self, context: ProjectContext,
                        module: ModuleInfo, func: FunctionInfo,
                        site: CallSite) -> Iterator[Finding]:
        node = site.node
        if _is_submit(node):
            yield from self._check_work_exprs(context, module, func,
                                              node, list(node.args),
                                              node.keywords)
            yield from self._check_tagged(module, site)
            return
        resolved = context.resolve_call(module, site, func)
        if resolved in context.model.payload_classes:
            yield from self._check_work_exprs(context, module, func,
                                              node, list(node.args),
                                              node.keywords)
            yield from self._check_tagged(module, site)

    def _check_tagged(self, module: ModuleInfo,
                      site: CallSite) -> Iterator[Finding]:
        for tag, what in ((TAG_LOCK, "a threading lock"),
                          (TAG_HANDLE, "an open file handle")):
            for expr in site.tagged_args(tag):
                yield self.finding(
                    module.path, expr,
                    f"{what} crosses the process-pool boundary here — "
                    "it is process-local and unpicklable; pass plain "
                    "data and recreate the resource inside the worker")

    def _check_work_exprs(self, context: ProjectContext,
                          module: ModuleInfo,
                          func: Optional[FunctionInfo], call: ast.Call,
                          args: Sequence[ast.AST],
                          keywords: Sequence[ast.keyword]
                          ) -> Iterator[Finding]:
        exprs = list(args) + [kw.value for kw in keywords]
        scope = context.scope_of(func) if func is not None else []
        for expr in exprs:
            if isinstance(expr, ast.Lambda):
                yield self.finding(
                    module.path, expr,
                    "lambda crosses the process-pool boundary — "
                    "lambdas cannot be pickled; hoist it to a "
                    "module-level function")
                continue
            parts = dotted_name(expr)
            if parts is None or len(parts) != 1:
                continue
            resolved = context.model.resolve_name(module, parts,
                                                  scope=scope)
            if resolved is None:
                continue
            resolved_func = context.model.functions.get(resolved)
            if resolved_func is None:
                continue
            qual = resolved.rsplit(":", 1)[1]
            if "." in qual:
                parent = qual.rsplit(".", 1)[0]
                if parent in module.functions:
                    yield self.finding(
                        module.path, expr,
                        f"nested function {parts[0]}() crosses the "
                        "process-pool boundary — closures cannot be "
                        "pickled; hoist it to module level")

    # -- worker-side shared-state mutation -----------------------------

    def _check_worker_mutation(self, module: ModuleInfo,
                               func: FunctionInfo) -> Iterator[Finding]:
        fn_name = func.func_id.rsplit(":", 1)[1]
        for node in ast.walk(func.node):
            targets: Sequence[ast.AST] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            elif isinstance(node, ast.Call):
                parts = dotted_name(node.func)
                if parts is not None and parts[-1] == "__setattr__" \
                        and node.args \
                        and isinstance(node.args[0], ast.Name) \
                        and _is_config_name(node.args[0].id):
                    yield self.finding(
                        module.path, node,
                        f"__setattr__ on the shared run config inside "
                        f"worker-reachable {fn_name}() — workers must "
                        "treat the fork-inherited config as immutable")
                continue
            for target in targets:
                base: Optional[str] = None
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name):
                    base = target.value.id
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    base = target.value.id
                else:
                    continue
                if not _is_config_name(base):
                    continue
                if isinstance(target, ast.Subscript) \
                        and base not in module.module_level_names:
                    continue  # a local dict that merely sounds shared
                yield self.finding(
                    module.path, node,
                    f"mutation of shared state '{base}' inside "
                    f"worker-reachable {fn_name}() — the run config "
                    "and config registries are fork-inherited, so a "
                    "worker-side write diverges this worker's view "
                    "from its siblings' (and from re-runs); derive a "
                    "new value instead")


# ---------------------------------------------------------------------------
# W012 — order-determinism


#: Call tails that make a loop body order-sensitive: each call emits /
#: persists in iteration order.
_LOOP_SINK_TAILS = frozenset({
    "append", "extend", "write", "writelines", "writerow", "dump",
    "fingerprint", "append_event", "atomic_write_text",
    "atomic_write_json", "add_row",
})

#: Call tails whose *arguments* are serialized — an unordered value
#: here materializes its iteration order into bytes.  Plain
#: ``append``/``extend`` stay out: storing a set object is fine until
#: something iterates it, which the other checks catch.
_ARG_SINK_TAILS = frozenset({
    "fingerprint", "canonical_json", "dump", "dumps",
    "atomic_write_json", "atomic_write_text", "append_event",
    "writerow",
})

#: Call tails that take scientific parameters (wall-clock must not
#: reach them).
_SCIENTIFIC_TAILS = frozenset({
    "fingerprint", "SeedSequence", "default_rng", "canonical_json",
})


@register
class OrderDeterminism(ProjectRule):
    """Unordered iteration and wall-clock reads must not reach
    reproducibility-critical sinks."""

    code = "W012"
    name = "order-determinism"
    description = ("set/dict-view iteration order flowing into journal "
                   "writes, result lists, or fingerprints; wall-clock "
                   "reads flowing into scientific parameters")
    rationale = ("Two bit-identical runs must journal bit-identical "
                 "bytes.  Set iteration order varies across processes "
                 "(hash randomization), and dict views over "
                 "completion-order-filled dicts vary across dispatch "
                 "timing — sorted(...) the iterable.  A wall-clock "
                 "value in scientific parameters makes every "
                 "fingerprint unique and every resume impossible.")

    def check_project(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        for module, func, flow in context.iter_function_flows():
            yield from self._check_flow(context, module, func, flow)
        # Module-level statements get a flow of their own.
        for path in sorted(context.model.by_path):
            module = context.model.by_path[path]
            flow = FunctionFlow(module.tree)
            yield from self._check_flow(context, module, None, flow)

    def _check_flow(self, context: ProjectContext, module: ModuleInfo,
                    func: Optional[FunctionInfo],
                    flow: FunctionFlow) -> Iterator[Finding]:
        for loop in flow.loops:
            if TAG_UNORDERED not in loop.iter_tags:
                continue
            if loop.is_comprehension:
                continue  # caught at the sink via tag propagation
            sink = self._loop_sink(loop.node)
            if sink is None:
                continue
            fix = _span_fix(loop.iter_node, "sorted(", ")")
            yield self.finding(
                module.path, loop.iter_node,
                "iteration over an unordered set/dict view reaches "
                f"an order-sensitive sink ({sink}) — the emitted "
                "order varies across runs and dispatch timings; "
                "iterate sorted(...) instead", fix=fix)
        for site in flow.call_sites:
            tail = _call_tail(site.node)
            if tail in _ARG_SINK_TAILS:
                for expr in site.tagged_args(TAG_UNORDERED):
                    fix = _span_fix(expr, "sorted(", ")")
                    yield self.finding(
                        module.path, expr,
                        f"unordered set/dict-view value flows into "
                        f"{tail}(...) — journal/fingerprint bytes "
                        "would depend on hash order; wrap it in "
                        "sorted(...)", fix=fix)
            if tail in _SCIENTIFIC_TAILS or self._is_config_ctor(
                    context, module, func, site):
                for expr in site.tagged_args(TAG_WALLCLOCK):
                    yield self.finding(
                        module.path, expr,
                        f"wall-clock reading flows into {tail}(...) — "
                        "scientific parameters must be pure functions "
                        "of the run configuration, or no two runs can "
                        "ever fingerprint alike; pass the timestamp "
                        "out-of-band if it is operational metadata")

    def _is_config_ctor(self, context: ProjectContext,
                        module: ModuleInfo,
                        func: Optional[FunctionInfo],
                        site: CallSite) -> bool:
        resolved = context.resolve_call(module, site, func)
        if resolved is None:
            return False
        klass = context.model.classes.get(resolved)
        return klass is not None and klass.is_config_class()

    @staticmethod
    def _loop_sink(loop_node: ast.AST) -> Optional[str]:
        """The first order-sensitive call in a loop body, if any."""
        body = getattr(loop_node, "body", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, ast.Call):
                    tail = _call_tail(node)
                    if tail in _LOOP_SINK_TAILS:
                        return f"{tail}()"
        return None


# ---------------------------------------------------------------------------
# W013 — fingerprint-coverage


@register
class FingerprintCoverage(ProjectRule):
    """Run-config/trial-spec dataclass fields must reach the run
    fingerprint."""

    code = "W013"
    name = "fingerprint-coverage"
    description = ("a run-config/trial-spec dataclass field missing "
                   "from the SHA-256 run-fingerprint params")
    rationale = ("The fingerprint is what stops a resumed sweep from "
                 "silently merging results computed under different "
                 "parameters.  A config field the fingerprint ignores "
                 "is a parameter you can change while resuming into "
                 "stale results.  Genuinely operational fields "
                 "(worker counts, retry budgets) carry an "
                 "individually-justified inline suppression instead.")

    def check_project(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        model = context.model
        keys = model.fingerprint_keys
        if keys is None:
            return  # no fingerprint computation in the analyzed set
        sites = ", ".join(f"{path}:{line}" for path, line
                          in sorted(model.fingerprint_sites)[:2])
        for klass in model.config_classes():
            for field_name, lineno, annotation in klass.fields:
                if field_name in keys:
                    continue
                if annotation is not None and any(
                        isinstance(sub, ast.Name)
                        and sub.id == "ClassVar"
                        or isinstance(sub, ast.Attribute)
                        and sub.attr == "ClassVar"
                        for sub in ast.walk(annotation)):
                    continue
                yield Finding(
                    path=klass.path, line=lineno, col=0,
                    rule=self.code,
                    message=(f"field '{field_name}' of "
                             f"{klass.name} never reaches the run "
                             f"fingerprint (computed at {sites}) — "
                             "add it to the params dict, or suppress "
                             "here with a justification if it is "
                             "operational (it must not change trial "
                             "results)"))
