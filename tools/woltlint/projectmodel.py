"""The woltlint project model: modules, imports, calls, dataclasses.

Single-file AST rules (W001-W009) cannot see cross-module contracts:
an RNG captured in one module and submitted to a pool in another, or a
run-config dataclass whose new field never reaches the fingerprint
computation two files away.  This module builds the shared
whole-project view those rules need, in two passes:

1. **Per-module pass** — every analyzed file is parsed into a
   :class:`ModuleInfo`: its import table (local name -> dotted
   target, relative imports resolved against the module's package),
   its functions (nested ones included) and classes, and the dataclass
   field lists.
2. **Linking pass** — names are resolved across modules into a call
   graph, and the model derives the project-level facts the
   flow-sensitive rules consume:

   * :attr:`ProjectModel.entry_points` — functions handed to
     ``Executor.submit`` / ``pool.map`` as work items;
   * :attr:`ProjectModel.worker_reachable` — everything reachable from
     an entry point through the call graph (code that runs inside
     worker processes);
   * :attr:`ProjectModel.payload_classes` — classes whose instances
     cross the process boundary: constructed values that flow into a
     submit call, closed transitively over dataclass field
     annotations (a ``_ChunkTask`` carrying ``_TrialSpec`` tuples
     makes ``_TrialSpec`` a payload class too);
   * :attr:`ProjectModel.fingerprint_keys` — the union of constant
     string keys of every params dict that flows into a
     ``fingerprint(...)`` call (the W013 coverage universe).

Resolution is deliberately best-effort: unresolvable names simply drop
out of the graph.  A lint pass must never guess a finding into
existence, so every derived fact errs toward "unknown" rather than
"violation".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectModel",
           "module_name_for_path"]

#: Path prefixes stripped when turning a display path into a module
#: name (``src/repro/sim/runner.py`` -> ``repro.sim.runner``).
_SRC_PREFIXES = ("src/",)

#: Name fragments that mark a dataclass as a run-configuration or
#: trial-spec container for the W013 coverage check.
_CONFIG_CLASS_WORDS = ("runconfig", "trialspec")


def module_name_for_path(path: str) -> str:
    """Dotted module name for an analysis-root-relative display path."""
    name = path.replace("\\", "/")
    for prefix in _SRC_PREFIXES:
        if name.startswith(prefix):
            name = name[len(prefix):]
            break
    if name.endswith(".py"):
        name = name[:-3]
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in the project.

    Attributes:
        func_id: project-unique id, ``module:qualname`` where the
            qualname uses ``Class.method`` / ``outer.inner`` dotting.
        module: dotted module name.
        node: the AST definition.
        path: display path of the defining file.
        calls: resolved callee ids (``module:qualname``) — in-project
            edges of the call graph.
        external_calls: dotted names of calls that resolve outside the
            analyzed files (kept for diagnostics).
        nested: local names of functions defined inside this one.
        returns_classes: class ids this function ``return``s instances
            of (direct ``return ClassName(...)`` only).
    """

    func_id: str
    module: str
    node: ast.AST
    path: str
    calls: Set[str] = field(default_factory=set)
    external_calls: Set[str] = field(default_factory=set)
    nested: Dict[str, str] = field(default_factory=dict)
    returns_classes: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class definition, with dataclass field details when present.

    Attributes:
        class_id: ``module:qualname``.
        fields: annotated field assignments in declaration order, as
            ``(name, lineno, annotation_node)`` triples.
        field_class_refs: in-project class ids referenced from field
            annotations (the payload-transitivity edges).
    """

    class_id: str
    module: str
    node: ast.ClassDef
    path: str
    is_dataclass: bool = False
    fields: List[Tuple[str, int, Optional[ast.AST]]] = \
        field(default_factory=list)
    field_class_refs: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.class_id.rsplit(":", 1)[1].rsplit(".", 1)[-1]

    def is_config_class(self) -> bool:
        """Whether W013 treats this as a run-config/trial-spec class."""
        folded = self.name.replace("_", "").lower()
        return any(word in folded for word in _CONFIG_CLASS_WORDS)


@dataclass
class ModuleInfo:
    """One analyzed file: imports, definitions, and its AST."""

    name: str
    path: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_level_names: Set[str] = field(default_factory=set)


def _dotted(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        parts = _dotted(target)
        if parts and parts[-1] == "dataclass":
            return True
    return False


def _resolve_relative(package: str, level: int,
                      module: Optional[str]) -> Optional[str]:
    """Resolve a ``from ...x import y`` module against ``package``."""
    parts = package.split(".") if package else []
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module:
        base.extend(module.split("."))
    return ".".join(base) if base else None


class _ModuleScanner(ast.NodeVisitor):
    """First pass: collect one module's imports and definitions."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._scope: List[str] = []

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else \
                alias.name.split(".")[0]
            self.info.imports[local] = target
        self._record_names(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            package = self.info.name.rsplit(".", 1)[0] \
                if "." in self.info.name else ""
            base = _resolve_relative(package, node.level, node.module)
        else:
            base = node.module
        if base is not None:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.info.imports[local] = f"{base}.{alias.name}"
        self._record_names(node)

    # -- definitions ---------------------------------------------------

    def _qual(self, name: str) -> str:
        return ".".join(self._scope + [name]) if self._scope else name

    def _visit_function(self, node: ast.AST) -> None:
        qual = self._qual(node.name)
        func_id = f"{self.info.name}:{qual}"
        self.info.functions[qual] = FunctionInfo(
            func_id=func_id, module=self.info.name, node=node,
            path=self.info.path)
        if self._scope:
            # Make the nested def discoverable from its parent.
            parent = ".".join(self._scope)
            parent_info = self.info.functions.get(parent)
            if parent_info is not None:
                parent_info.nested[node.name] = qual
        self._record_names(node)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        info = ClassInfo(class_id=f"{self.info.name}:{qual}",
                         module=self.info.name, node=node,
                         path=self.info.path,
                         is_dataclass=_is_dataclass_decorated(node))
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                info.fields.append((stmt.target.id, stmt.lineno,
                                    stmt.annotation))
        self.info.classes[qual] = info
        self._record_names(node)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _record_names(self, node: ast.AST) -> None:
        if not self._scope:
            self.info.module_level_names.update(
                getattr(alias, "asname", None) or alias.name.split(".")[0]
                for alias in getattr(node, "names", []))

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.info.module_level_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope and isinstance(node.target, ast.Name):
            self.info.module_level_names.add(node.target.id)
        self.generic_visit(node)


@dataclass
class _SubmitSite:
    """One ``submit``/``map`` call: where, and what it was given."""

    path: str
    node: ast.Call
    func_id: str  # enclosing function id ("" at module level)
    work_args: Tuple[ast.AST, ...]  # first positional arg onward


class ProjectModel:
    """The linked whole-project view shared by the W010+ rules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.entry_points: Set[str] = set()
        self.worker_reachable: Set[str] = set()
        self.payload_classes: Set[str] = set()
        self.submit_sites: List[_SubmitSite] = []
        #: Union of constant keys over every fingerprint params dict;
        #: None when the analyzed files contain no fingerprint call.
        self.fingerprint_keys: Optional[Set[str]] = None
        #: ``(path, line)`` of each fingerprint call site (for W013
        #: messages).
        self.fingerprint_sites: List[Tuple[str, int]] = []

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[str, ast.Module]]
              ) -> "ProjectModel":
        """Link ``(display_path, tree)`` pairs into a project model."""
        model = cls()
        for path, tree in files:
            info = ModuleInfo(name=module_name_for_path(path),
                              path=path, tree=tree)
            _ModuleScanner(info).visit(tree)
            model.modules[info.name] = info
            model.by_path[path] = info
            for qual, func in info.functions.items():
                model.functions[func.func_id] = func
            for qual, klass in info.classes.items():
                model.classes[klass.class_id] = klass
        model._link()
        return model

    # -- name resolution -----------------------------------------------

    def resolve_name(self, module: ModuleInfo, parts: Sequence[str],
                     scope: Sequence[str] = ()) -> Optional[str]:
        """Resolve a dotted name to an in-project function/class id.

        ``scope`` is the qualname path of the enclosing function, used
        to find nested definitions first (innermost scope wins).
        """
        if not parts:
            return None
        head, rest = parts[0], list(parts[1:])
        # Innermost-first: nested defs of enclosing *functions* (a
        # class prefix must not capture bare names — ``foo()`` inside a
        # method never means ``Class.foo``).
        for depth in range(len(scope), 0, -1):
            prefix = ".".join(scope[:depth])
            if prefix not in module.functions:
                continue
            qual = f"{prefix}.{head}"
            if qual in module.functions and not rest:
                return module.functions[qual].func_id
            if qual in module.classes and not rest:
                return module.classes[qual].class_id
        if not rest:
            if head in module.functions:
                return module.functions[head].func_id
            if head in module.classes:
                return module.classes[head].class_id
        if head == "self" and scope and rest:
            # ``self.method()`` inside a class body: the class is the
            # scope element above the method.
            owner = ".".join(scope[:-1])
            if owner in module.classes:
                qual = f"{owner}.{rest[0]}"
                if qual in module.functions and len(rest) == 1:
                    return module.functions[qual].func_id
            return None
        target = module.imports.get(head)
        if target is None:
            return None
        dotted = ".".join([target] + rest)
        return self._lookup_dotted(dotted)

    def _lookup_dotted(self, dotted: str) -> Optional[str]:
        """Map a fully-dotted name onto an analyzed module's symbol."""
        if dotted in self.modules:
            return None  # a module, not a symbol
        if "." not in dotted:
            return None
        head, _, tail = dotted.rpartition(".")
        module = self.modules.get(head)
        if module is not None:
            if tail in module.functions:
                return module.functions[tail].func_id
            if tail in module.classes:
                return module.classes[tail].class_id
            # Re-exported through a package __init__: chase one hop.
            target = module.imports.get(tail)
            if target is not None and target != dotted:
                return self._lookup_dotted(target)
        return None

    # -- linking -------------------------------------------------------

    def _link(self) -> None:
        for module in self.modules.values():
            for qual, func in module.functions.items():
                scope = qual.split(".")[:-1]
                self._link_function(module, func, scope + [qual.split(".")[-1]])
            self._scan_module_level(module)
        self._find_entry_points()
        self._close_worker_reachable()
        self._find_payload_classes()
        self._collect_fingerprint_keys()

    def _link_function(self, module: ModuleInfo, func: FunctionInfo,
                       scope: List[str]) -> None:
        own_node = func.node
        for node in ast.walk(own_node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not own_node:
                continue  # nested bodies are linked as their own funcs
            if isinstance(node, ast.Call):
                parts = _dotted(node.func)
                if parts is None:
                    continue
                resolved = self.resolve_name(module, parts, scope=scope)
                if resolved is not None:
                    func.calls.add(resolved)
                else:
                    func.external_calls.add(".".join(parts))
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                # A bare reference to a function (stored, passed along,
                # dispatched through a variable) is an edge too: the
                # ``run_fn = a if guarded else b; run_fn(...)`` pattern
                # must not hide ``a``/``b`` from reachability.
                resolved = self.resolve_name(module, [node.id],
                                             scope=scope)
                if resolved in self.functions:
                    func.calls.add(resolved)
            elif isinstance(node, ast.Return) and node.value is not None:
                value = node.value
                if isinstance(value, ast.Call):
                    parts = _dotted(value.func)
                    if parts:
                        resolved = self.resolve_name(module, parts,
                                                     scope=scope)
                        if resolved in self.classes:
                            func.returns_classes.add(resolved)

    def _scan_module_level(self, module: ModuleInfo) -> None:
        """Record submit sites with their innermost enclosing function."""
        model = self

        class Scanner(ast.NodeVisitor):
            def __init__(self) -> None:
                self.scope: List[str] = []

            def _fn(self, node: ast.AST) -> None:
                self.scope.append(node.name)
                self.generic_visit(node)
                self.scope.pop()

            visit_FunctionDef = _fn
            visit_AsyncFunctionDef = _fn

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.scope.append(node.name)
                self.generic_visit(node)
                self.scope.pop()

            def visit_Call(self, node: ast.Call) -> None:
                kind = model._is_submit_call(node)
                if kind is not None and node.args:
                    qual = ".".join(self.scope)
                    func = module.functions.get(qual)
                    model.submit_sites.append(_SubmitSite(
                        path=module.path, node=node,
                        func_id=func.func_id if func else "",
                        work_args=tuple(node.args)))
                self.generic_visit(node)

        Scanner().visit(module.tree)

    # -- submit sites & entry points -----------------------------------

    @staticmethod
    def _is_submit_call(node: ast.Call) -> Optional[str]:
        """``"submit"``/``"map"`` when the call dispatches pool work."""
        if not isinstance(node.func, ast.Attribute):
            return None
        attr = node.func.attr
        if attr == "submit":
            return attr
        if attr in ("map", "apply_async", "starmap"):
            receiver = _dotted(node.func.value)
            blob = ".".join(receiver).lower() if receiver else ""
            if "pool" in blob or "executor" in blob:
                return attr
        return None

    def _find_entry_points(self) -> None:
        for site in self.submit_sites:
            module = self.by_path[site.path]
            scope = self._scope_for(site.func_id)
            target = site.work_args[0]
            parts = _dotted(target)
            if parts is None:
                continue
            resolved = self.resolve_name(module, parts, scope=scope)
            if resolved in self.functions:
                self.entry_points.add(resolved)

    def _scope_for(self, func_id: str) -> List[str]:
        if not func_id or ":" not in func_id:
            return []
        return func_id.split(":", 1)[1].split(".")

    def _close_worker_reachable(self) -> None:
        frontier = list(self.entry_points)
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            func = self.functions.get(current)
            if func is None:
                continue
            for callee in func.calls:
                if callee in self.functions and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        self.worker_reachable = seen

    # -- payload classes -----------------------------------------------

    def _find_payload_classes(self) -> None:
        direct: Set[str] = set()
        for site in self.submit_sites:
            module = self.by_path[site.path]
            scope = self._scope_for(site.func_id)
            # Work args past the callable: the values shipped across
            # the process boundary.
            for arg in site.work_args[1:]:
                direct |= self._classes_of_expr(module, arg, scope,
                                                site.func_id)
        # Transitive closure over dataclass field annotations.
        closed = set(direct)
        frontier = list(direct)
        while frontier:
            current = frontier.pop()
            klass = self.classes.get(current)
            if klass is None:
                continue
            self._resolve_field_refs(klass)
            for ref in klass.field_class_refs:
                if ref not in closed:
                    closed.add(ref)
                    frontier.append(ref)
        self.payload_classes = closed

    def _classes_of_expr(self, module: ModuleInfo, expr: ast.AST,
                         scope: List[str],
                         func_id: str) -> Set[str]:
        """Best-effort class ids an expression may evaluate to."""
        found: Set[str] = set()
        if isinstance(expr, ast.Call):
            parts = _dotted(expr.func)
            if parts is not None:
                resolved = self.resolve_name(module, parts, scope=scope)
                if resolved in self.classes:
                    found.add(resolved)
                elif resolved in self.functions:
                    found |= self.functions[resolved].returns_classes
        elif isinstance(expr, ast.Name):
            # Def-use within the enclosing function: v = ClassName(...)
            func = self.functions.get(func_id)
            body = func.node if func is not None else module.tree
            for node in ast.walk(body):
                if not isinstance(node, ast.Assign):
                    continue
                if not any(isinstance(t, ast.Name) and t.id == expr.id
                           for t in node.targets):
                    continue
                found |= self._classes_of_expr(module, node.value,
                                               scope, func_id)
        elif isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                found |= self._classes_of_expr(module, element, scope,
                                               func_id)
        return found

    def _resolve_field_refs(self, klass: ClassInfo) -> None:
        if klass.field_class_refs:
            return
        module = self.modules[klass.module]
        for _, _, annotation in klass.fields:
            if annotation is None:
                continue
            for node in ast.walk(annotation):
                parts = None
                if isinstance(node, (ast.Name, ast.Attribute)):
                    parts = _dotted(node)
                elif isinstance(node, ast.Constant) \
                        and isinstance(node.value, str):
                    # String annotation: a bare class name is common.
                    parts = node.value.split(".")
                if not parts:
                    continue
                resolved = self.resolve_name(module, parts)
                if resolved in self.classes:
                    klass.field_class_refs.add(resolved)

    # -- fingerprint coverage ------------------------------------------

    def _collect_fingerprint_keys(self) -> None:
        keys: Set[str] = set()
        found_site = False
        for name in sorted(self.modules):
            module = self.modules[name]
            for call, enclosing in self._iter_calls_with_scope(module):
                parts = _dotted(call.func)
                if parts is None or parts[-1] != "fingerprint":
                    continue
                if not call.args:
                    continue
                found_site = True
                self.fingerprint_sites.append((module.path,
                                               call.lineno))
                keys |= self._dict_keys_of(module, call.args[0],
                                           enclosing)
        self.fingerprint_keys = keys if found_site else None

    def _iter_calls_with_scope(self, module: ModuleInfo
                               ) -> Iterator[Tuple[ast.Call,
                                                   Optional[ast.AST]]]:
        for qual, func in module.functions.items():
            own = func.node
            for node in ast.walk(own):
                if isinstance(node, ast.Call):
                    yield node, own
        class _Top(ast.NodeVisitor):
            def __init__(self) -> None:
                self.calls: List[ast.Call] = []

            def visit_FunctionDef(self, node: ast.AST) -> None:
                pass

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_Call(self, node: ast.Call) -> None:
                self.calls.append(node)
                self.generic_visit(node)

        top = _Top()
        top.visit(module.tree)
        for call in top.calls:
            yield call, None

    def _dict_keys_of(self, module: ModuleInfo, expr: ast.AST,
                      enclosing: Optional[ast.AST]) -> Set[str]:
        """Constant string keys of the dict an expression denotes."""
        keys: Set[str] = set()

        def keys_of_literal(node: ast.Dict) -> None:
            for key in node.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)

        if isinstance(expr, ast.Dict):
            keys_of_literal(expr)
            return keys
        if isinstance(expr, ast.Call):
            # dict(params) / dict(**params): chase the argument.
            parts = _dotted(expr.func)
            if parts and parts[-1] == "dict" and expr.args:
                return self._dict_keys_of(module, expr.args[0],
                                          enclosing)
            return keys
        if not isinstance(expr, ast.Name) or enclosing is None:
            return keys
        name = expr.id
        for node in ast.walk(enclosing):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == name \
                            and isinstance(node.value, ast.Dict):
                        keys_of_literal(node.value)
                    # params["key"] = value augmentations
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == name \
                            and isinstance(target.slice, ast.Constant) \
                            and isinstance(target.slice.value, str):
                        keys.add(target.slice.value)
            elif isinstance(node, ast.Call):
                # params.update({...})
                parts = _dotted(node.func)
                if parts and len(parts) >= 2 and parts[-2] == name \
                        and parts[-1] == "update" and node.args \
                        and isinstance(node.args[0], ast.Dict):
                    keys_of_literal(node.args[0])
        return keys

    # -- convenience ---------------------------------------------------

    def config_classes(self) -> List[ClassInfo]:
        """Run-config/trial-spec dataclasses, in deterministic order."""
        return sorted((k for k in self.classes.values()
                       if k.is_dataclass and k.is_config_class()),
                      key=lambda k: (k.path, k.node.lineno))

    def function_for_node(self, path: str,
                          node: ast.AST) -> Optional[FunctionInfo]:
        module = self.by_path.get(path)
        if module is None:
            return None
        for func in module.functions.values():
            if func.node is node:
                return func
        return None
