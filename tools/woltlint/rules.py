"""The woltlint rule registry and the six WOLT-specific rules.

Every rule encodes one of the coding disciplines the PR-1 correctness
contracts (bit-identical batching, SeedSequence-derived parallel
determinism) silently depend on.  Rules are plain classes registered in
:data:`RULES`; adding a rule means subclassing :class:`Rule`, decorating
it with :func:`register`, and giving it a focused unit test (see
``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Type

from .findings import Finding

__all__ = ["Rule", "RULES", "register", "all_rule_codes",
           "UnseededRng", "SeedArithmetic", "ScalarEvalInLoop",
           "ReportMutation", "UnitSuffix", "SwallowedEngineException",
           "SwallowedTransportException", "NonAtomicPersistence",
           "UnsanitizedTelemetryScenario", "UnvalidatedIngest"]


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _path_parts(path: str) -> List[str]:
    return path.replace("\\", "/").split("/")


class Rule:
    """Base class: one invariant, one code, one ``check`` pass."""

    code: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on ``path`` (analysis-root relative)."""
        return True

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str,
                fix: Optional[object] = None) -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code, message=message, fix=fix)


class ProjectRule(Rule):
    """Base for whole-project rules (W010+): one pass over the model.

    Project rules see every analyzed file at once — the module graph,
    call graph, and per-function dataflow — instead of a single tree.
    Their findings still land on concrete file/line locations, so the
    per-line suppression and baseline machinery applies unchanged.
    """

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        return iter(())

    def check_project(self, context: "object") -> Iterator[Finding]:
        """Yield findings over a :class:`~.flowrules.ProjectContext`."""
        raise NotImplementedError


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rule_codes() -> List[str]:
    return sorted(RULES)


# ---------------------------------------------------------------------------
# W001 — unseeded RNG


#: numpy legacy global-state sampling/seeding functions: any
#: ``np.random.<fn>`` call routes through the hidden global RandomState
#: and silently couples otherwise-independent components.
_GLOBAL_STATE_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "sample", "ranf", "choice", "bytes", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "exponential",
    "poisson", "binomial", "beta", "gamma", "lognormal", "geometric",
})


@register
class UnseededRng(Rule):
    """``default_rng()`` with no seed, or any legacy global-state call."""

    code = "W001"
    name = "unseeded-rng"
    description = ("np.random.default_rng() without a seed, or a legacy "
                   "np.random.* global-state call")
    rationale = ("Every RNG must be seeded (or derived from a "
                 "SeedSequence) for trials to be reproducible and for "
                 "parallel runs to be bit-identical to serial runs.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            if parts[-1] == "default_rng" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    path, node,
                    "unseeded default_rng() — pass an explicit seed or a "
                    "SeedSequence child so results are reproducible")
            elif (len(parts) >= 3 and parts[-3] in ("np", "numpy")
                    and parts[-2] == "random"
                    and parts[-1] in _GLOBAL_STATE_FNS):
                yield self.finding(
                    path, node,
                    f"legacy global-state call np.random.{parts[-1]}() — "
                    "use a seeded np.random.Generator instead")


# ---------------------------------------------------------------------------
# W002 — seed arithmetic


def _mentions_seed(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


@register
class SeedArithmetic(Rule):
    """Child seeds derived by arithmetic instead of SeedSequence.spawn."""

    code = "W002"
    name = "seed-arithmetic"
    description = ("default_rng()/SeedSequence() called with arithmetic "
                   "on a seed (e.g. seed + trial)")
    rationale = ("seed + k child streams overlap statistically and tie "
                 "results to loop order; SeedSequence.spawn gives "
                 "independent child streams and is what makes "
                 "workers=N bit-identical to serial.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None or parts[-1] not in ("default_rng",
                                                  "SeedSequence"):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for arg in values:
                has_binop = any(isinstance(sub, ast.BinOp)
                                for sub in ast.walk(arg))
                if has_binop and _mentions_seed(arg):
                    yield self.finding(
                        path, node,
                        f"{parts[-1]} seeded with seed arithmetic — "
                        "derive child seeds with "
                        "np.random.SeedSequence(seed).spawn(n) instead")
                    break


# ---------------------------------------------------------------------------
# W003 — scalar evaluate inside a candidate loop


@register
class ScalarEvalInLoop(Rule):
    """Scalar ``evaluate`` called inside a for/while on a hot path."""

    code = "W003"
    name = "scalar-eval-in-loop"
    description = ("scalar engine evaluate() inside a for/while loop in "
                   "core/ or sim/ hot paths")
    rationale = ("Scoring candidates one evaluate() call per iteration "
                 "is the hot path PR 1 vectorized; use evaluate_batch "
                 "(bit-identical by contract) or suppress with a "
                 "justification if the loop is a reference oracle.")

    def applies_to(self, path: str) -> bool:
        return bool({"core", "sim"} & set(_path_parts(path)[:-1]))

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        rule = self
        findings: List[Finding] = []

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.loop_depth = 0

            def _new_scope(self, node: ast.AST) -> None:
                saved, self.loop_depth = self.loop_depth, 0
                self.generic_visit(node)
                self.loop_depth = saved

            visit_FunctionDef = _new_scope
            visit_AsyncFunctionDef = _new_scope
            visit_Lambda = _new_scope

            def _loop(self, node: ast.AST) -> None:
                self.loop_depth += 1
                self.generic_visit(node)
                self.loop_depth -= 1

            visit_For = _loop
            visit_While = _loop
            visit_ListComp = _loop
            visit_SetComp = _loop
            visit_DictComp = _loop
            visit_GeneratorExp = _loop

            def visit_Call(self, node: ast.Call) -> None:
                parts = dotted_parts(node.func)
                if (self.loop_depth > 0 and parts is not None
                        and parts[-1] == "evaluate"):
                    findings.append(rule.finding(
                        path, node,
                        "scalar evaluate() inside a loop — score the "
                        "whole candidate batch with evaluate_batch()"))
                self.generic_visit(node)

        Visitor().visit(tree)
        return iter(findings)


# ---------------------------------------------------------------------------
# W004 — mutation of throughput reports


@register
class ReportMutation(Rule):
    """Attribute assignment to a ThroughputReport-like object."""

    code = "W004"
    name = "report-mutation"
    description = ("attribute assignment to a ThroughputReport / "
                   "BatchThroughputReport instance")
    rationale = ("Reports are frozen snapshots shared across search "
                 "code; mutating one (or bypassing frozen with "
                 "object.__setattr__) silently corrupts every holder.")

    @staticmethod
    def _is_report_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return "report" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "report" in node.attr.lower()
        return False

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            targets: Sequence[ast.AST] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            elif isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                if (parts is not None and parts[-1] == "__setattr__"
                        and node.args
                        and self._is_report_expr(node.args[0])):
                    yield self.finding(
                        path, node,
                        "__setattr__ on a throughput report — reports "
                        "are frozen; build a new one instead")
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and self._is_report_expr(target.value):
                    yield self.finding(
                        path, node,
                        f"mutation of report attribute "
                        f"'.{target.attr}' — ThroughputReport and "
                        "BatchThroughputReport are frozen snapshots; "
                        "build a new report instead")


# ---------------------------------------------------------------------------
# W005 — Mbps unit suffix


#: Substrings that mark a float as a link-throughput quantity.
_UNIT_WORDS = ("throughput", "capacity", "tput", "bandwidth", "goodput")


def _is_float_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "float"
    return False


def _needs_suffix(name: str) -> bool:
    lowered = name.lower()
    return (any(word in lowered for word in _UNIT_WORDS)
            and not lowered.endswith("_mbps"))


@register
class UnitSuffix(Rule):
    """Float throughput/capacity names must end in ``_mbps``."""

    code = "W005"
    name = "unit-suffix"
    description = ("float-typed throughput/capacity parameter or field "
                   "without a _mbps suffix")
    rationale = ("Mixing Mbps with other units is invisible to the type "
                 "checker; the suffix convention makes the unit part of "
                 "every signature.  Established result-API names may "
                 "carry a documented inline exemption.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = (list(node.args.posonlyargs) + list(node.args.args)
                        + list(node.args.kwonlyargs))
                for arg in args:
                    if _is_float_annotation(arg.annotation) \
                            and _needs_suffix(arg.arg):
                        yield self.finding(
                            path, arg,
                            f"float parameter '{arg.arg}' carries a "
                            "throughput/capacity value — name it "
                            f"'{arg.arg}_mbps' (or document an "
                            "exemption)")
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) \
                            and isinstance(stmt.target, ast.Name) \
                            and _is_float_annotation(stmt.annotation) \
                            and _needs_suffix(stmt.target.id):
                        yield self.finding(
                            path, stmt,
                            f"float field '{stmt.target.id}' carries a "
                            "throughput/capacity value — name it "
                            f"'{stmt.target.id}_mbps' (or document an "
                            "exemption)")


# ---------------------------------------------------------------------------
# W006 — swallowed exceptions in the engine / sharing laws


#: Analysis-root-relative path suffixes the rule guards.
_ENGINE_SUFFIXES = ("net/engine.py", "plc/sharing.py", "wifi/sharing.py")


@register
class SwallowedEngineException(Rule):
    """Bare/broad except that swallows errors in the throughput engine."""

    code = "W006"
    name = "bare-except-in-engine"
    description = ("bare except, or broad except that swallows the "
                   "exception, in the engine/sharing-law modules")
    rationale = ("The engine and the two sharing laws are the ground "
                 "truth every policy is scored against; a swallowed "
                 "exception there turns a wrong number into a silent "
                 "wrong answer.")

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(normalized.endswith(suffix)
                   for suffix in _ENGINE_SUFFIXES)

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        parts = (dotted_parts(handler.type)
                 if handler.type is not None else None)
        return parts is not None and parts[-1] in ("Exception",
                                                   "BaseException")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path, node,
                    "bare except in an engine module — catch the "
                    "specific exception and re-raise or report it")
            elif self._is_broad(node):
                reraises = any(isinstance(sub, ast.Raise)
                               for sub in ast.walk(node))
                if not reraises:
                    yield self.finding(
                        path, node,
                        "broad except swallows the exception in an "
                        "engine module — narrow it or re-raise")


# ---------------------------------------------------------------------------
# W007 — swallowed exceptions around control-plane transport calls


#: Method names of the :class:`repro.core.controller.Transport` seam.
_TRANSPORT_METHODS = frozenset({
    "observe_report", "deliver_directive", "handoff_succeeds",
    "backoff_s",
})


def _calls_transport(stmts: Sequence[ast.stmt]) -> bool:
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            parts = dotted_parts(sub.func)
            if parts is None:
                continue
            if parts[-1] in _TRANSPORT_METHODS \
                    or "transport" in parts[:-1]:
                return True
    return False


@register
class SwallowedTransportException(Rule):
    """Bare/broad except that swallows errors around transport calls."""

    code = "W007"
    name = "swallowed-transport-exception"
    description = ("bare except, or broad except that does not "
                   "re-raise, around a control-plane transport call")
    rationale = ("The controller's directive retry path must re-raise "
                 "on exhaustion; an `except Exception` that swallows a "
                 "transport error silently desynchronizes the CC's "
                 "view of the network from the clients' real "
                 "associations.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            if not _calls_transport(node.body):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield self.finding(
                        path, handler,
                        "bare except around a transport call — catch "
                        "the specific exception and re-raise on "
                        "exhaustion")
                elif SwallowedEngineException._is_broad(handler):
                    reraises = any(isinstance(sub, ast.Raise)
                                   for sub in ast.walk(handler))
                    if not reraises:
                        yield self.finding(
                            path, handler,
                            "broad except swallows a transport error — "
                            "the retry path must re-raise on "
                            "exhaustion")


# ---------------------------------------------------------------------------
# W008 — non-atomic result persistence


#: Name fragments that mark an expression as a results/checkpoint path.
_PERSIST_WORDS = ("result", "checkpoint", "journal", "snapshot",
                  "output", "history", "trace", "baseline", "bench")

#: Function-name prefixes that mark the enclosing function as a
#: persistence routine (its writes land on a results path even when the
#: path variable has a neutral name).
_PERSIST_FN_PREFIXES = ("save", "write", "dump", "persist", "store")


def _mentions_persist_word(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            name = sub.value
        if name is not None and any(word in name.lower()
                                    for word in _PERSIST_WORDS):
            return True
    return False


def _is_persistence_fn(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    if "atomic" in lowered:
        # The atomic-write helpers themselves (and any *_atomic wrapper)
        # are the sanctioned implementation, not a violation.
        return False
    return lowered.startswith(_PERSIST_FN_PREFIXES)


def _write_mode(call: ast.Call) -> bool:
    """Whether an ``open`` call truncates (mode contains ``w``)."""
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    return (isinstance(mode, ast.Constant)
            and isinstance(mode.value, str) and "w" in mode.value)


@register
class NonAtomicPersistence(Rule):
    """Results/checkpoints written without the atomic-write helper."""

    code = "W008"
    name = "non-atomic-persistence"
    description = ("open(path, 'w') / write_text / json.dump onto a "
                   "results or checkpoint path outside the atomic-write "
                   "helper")
    rationale = ("A crash between truncate and flush leaves a torn "
                 "results file that a resumed sweep would trust; route "
                 "result persistence through "
                 "repro.sim.checkpoint.atomic_write_text/_json "
                 "(temp file + os.replace) or an append-only "
                 "TrialStore journal.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        rule = self
        findings: List[Finding] = []

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.fn_stack: List[str] = []

            def _visit_fn(self, node: ast.AST) -> None:
                self.fn_stack.append(node.name)
                self.generic_visit(node)
                self.fn_stack.pop()

            visit_FunctionDef = _visit_fn
            visit_AsyncFunctionDef = _visit_fn

            def _in_atomic_helper(self) -> bool:
                return any("atomic" in name.lower()
                           for name in self.fn_stack)

            def _in_persistence_fn(self) -> bool:
                return bool(self.fn_stack) and \
                    _is_persistence_fn(self.fn_stack[-1])

            def visit_Call(self, node: ast.Call) -> None:
                self.generic_visit(node)
                if self._in_atomic_helper():
                    return
                parts = dotted_parts(node.func)
                if parts is not None:
                    tail = parts[-1]
                elif isinstance(node.func, ast.Attribute):
                    # e.g. Path(path).write_text(...) — the receiver is
                    # a call, so there is no dotted-name chain.
                    tail = node.func.attr
                    parts = ["<expr>", tail]
                else:
                    return
                if tail == "open" and node.args and _write_mode(node):
                    if _mentions_persist_word(node.args[0]) \
                            or self._in_persistence_fn():
                        findings.append(rule.finding(
                            path, node,
                            "open(..., 'w') truncates a results/"
                            "checkpoint file in place — a crash here "
                            "tears it; write through "
                            "atomic_write_text/atomic_write_json"))
                elif tail == "write_text" and len(parts) >= 2:
                    target = node.func.value \
                        if isinstance(node.func, ast.Attribute) else None
                    if (target is not None
                            and _mentions_persist_word(target)) \
                            or self._in_persistence_fn():
                        findings.append(rule.finding(
                            path, node,
                            "write_text onto a results/checkpoint "
                            "path is not atomic — a crash mid-write "
                            "tears the file; use atomic_write_text"))
                elif tail == "dump" and len(parts) >= 2 \
                        and parts[-2] == "json" and len(node.args) >= 2 \
                        and _mentions_persist_word(node.args[1]):
                    findings.append(rule.finding(
                        path, node,
                        "json.dump straight onto a results/checkpoint "
                        "handle is not atomic — serialize first and "
                        "write through atomic_write_json"))

        Visitor().visit(tree)
        return iter(findings)


# ---------------------------------------------------------------------------
# W009 — Scenario built from unsanitized telemetry


#: Name fragments that mark data as coming from live telemetry (scan
#: reports, capacity probes, driver readouts) rather than synthesis.
_TELEMETRY_WORDS = ("report", "scan", "telemetry", "measured", "readout")

#: Name fragments whose presence in the same function shows the
#: telemetry is being checked or sanitized before use.
_SANITIZER_WORDS = ("isfinite", "nan_to_num", "sanitize", "guard",
                    "check", "validate")


def _identifiers(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield sub.name


def _mentions_any(names: Iterator[str],
                  words: Sequence[str]) -> bool:
    return any(any(word in name.lower() for word in words)
               for name in names)


@register
class UnsanitizedTelemetryScenario(Rule):
    """``Scenario(...)`` built from telemetry with no finiteness check."""

    code = "W009"
    name = "unsanitized-telemetry-scenario"
    description = ("Scenario(...) constructed from telemetry-derived "
                   "data (report/scan/telemetry/measured names) in a "
                   "function with no finiteness or sanitation check")
    rationale = ("Scenario.__post_init__ rejects non-finite rates, so "
                 "a NaN scan report crashes the control loop at "
                 "construction time — far from the telemetry that "
                 "caused it.  A function that turns telemetry into a "
                 "Scenario must gate it first (np.isfinite / "
                 "nan_to_num / DecisionGuard.sanitize_rates / an "
                 "explicit validate step).")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if _mentions_any(_identifiers(node), _SANITIZER_WORDS):
                continue
            fn_telemetry = any(
                word in node.name.lower() for word in _TELEMETRY_WORDS
            ) or any(word in arg.arg.lower()
                     for word in _TELEMETRY_WORDS
                     for arg in (list(node.args.posonlyargs)
                                 + list(node.args.args)
                                 + list(node.args.kwonlyargs)))
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                parts = dotted_parts(sub.func)
                if parts is None or parts[-1] != "Scenario":
                    continue
                args = list(sub.args) + [kw.value
                                         for kw in sub.keywords]
                arg_telemetry = any(
                    _mentions_any(_identifiers(arg),
                                  _TELEMETRY_WORDS) for arg in args)
                if fn_telemetry or arg_telemetry:
                    yield self.finding(
                        path, sub,
                        "Scenario built from telemetry-derived data "
                        "with no finiteness gate in sight — check "
                        "np.isfinite (or route through "
                        "DecisionGuard.sanitize_rates) before "
                        "construction, or a NaN report crashes the "
                        "control loop here")


# ---------------------------------------------------------------------------
# W014 — unbounded dispatch


#: The chunked-dispatch entry points that accept a per-item deadline.
_DISPATCH_FNS = frozenset({"dispatch_chunked", "run_chunked"})


@register
class UnboundedDispatch(Rule):
    """Chunked dispatch without an explicit per-item deadline."""

    code = "W014"
    name = "unbounded-dispatch"
    description = ("dispatch_chunked()/run_chunked() call without a "
                   "timeout_s argument")
    rationale = ("A dispatch with no deadline waits on its slowest "
                 "item forever: one hung worker stalls the whole "
                 "batch (and, in the fleet service, the whole epoch). "
                 "Pass timeout_s — or timeout_s=None at the call site "
                 "to record that unbounded waiting is intentional "
                 "(e.g. the serial path, where there is no process "
                 "to reap across).")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None or parts[-1] not in _DISPATCH_FNS:
                continue
            if any(kw.arg == "timeout_s" or kw.arg is None
                   for kw in node.keywords):
                # Explicit timeout (even None) or a **kwargs splat
                # that may carry one: the author made a choice.
                continue
            yield self.finding(
                path, node,
                f"{parts[-1]}() without timeout_s — a hung worker "
                "stalls this batch forever; pass a deadline, or "
                "timeout_s=None to mark unbounded waiting as "
                "deliberate")


# ---------------------------------------------------------------------------
# W015 — unvalidated ingest


#: Deserializers whose output is untrusted external data.
_DESERIALIZER_FNS = frozenset({"loads", "load", "safe_load",
                               "full_load", "unsafe_load"})

#: Name fragments whose presence in the same function shows the
#: deserialized payload passes through a validation layer before it
#: reaches a trusted sink.
_VALIDATOR_WORDS = ("validate", "decode", "classify", "sanitize",
                    "schema", "isfinite", "reject", "require",
                    "_take", "check", "verify", "quarantine")


def _is_deserializer(call: ast.Call) -> bool:
    parts = dotted_parts(call.func)
    if parts is None or parts[-1] not in _DESERIALIZER_FNS:
        return False
    # Bare load()/loads() of unknown provenance counts too, but the
    # canonical shapes are json.loads / yaml.safe_load.
    return len(parts) == 1 or parts[-2] in ("json", "yaml")


def _ingest_sink(call: ast.Call) -> Optional[str]:
    """Name a trusted sink this call feeds, or ``None``."""
    parts = dotted_parts(call.func)
    if parts is None:
        return None
    if parts[-1] == "Scenario":
        return "Scenario(...)"
    if parts[-1] == "fingerprint":
        return "fingerprint(...)"
    if (parts[-1] in ("append", "append_event") and len(parts) >= 2
            and any(word in parts[-2].lower()
                    for word in ("store", "journal"))):
        return f"{parts[-2]}.{parts[-1]}(...)"
    return None


@register
class UnvalidatedIngest(Rule):
    """Deserialized external data flowing into a trusted sink unvetted."""

    code = "W015"
    name = "unvalidated-ingest"
    description = ("json.loads()/yaml.safe_load() output reaching a "
                   "Scenario, a fingerprinted journal append, or "
                   "fingerprint() in a function with no validation "
                   "step")
    rationale = ("Deserialized bytes are attacker-shaped: one NaN, "
                 "bool-as-int, or missing key that reaches "
                 "Scenario(...) or a fingerprinted journal poisons "
                 "the control loop (or the journal's identity) far "
                 "from the read that caused it.  Ingest boundaries "
                 "must classify/validate every record first — see "
                 "repro.fleet.ingest for the reference shape.")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if _mentions_any(_identifiers(node), _VALIDATOR_WORDS):
                continue
            tainted: set = set()
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not (isinstance(sub.value, ast.Call)
                        and _is_deserializer(sub.value)):
                    continue
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            if not tainted:
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                sink = _ingest_sink(sub)
                if sink is None:
                    continue
                args = list(sub.args) + [kw.value
                                         for kw in sub.keywords]
                if any(name in tainted
                       for arg in args
                       for name in _identifiers(arg)):
                    yield self.finding(
                        path, sub,
                        f"deserialized payload reaches {sink} with "
                        "no validation step in this function — "
                        "classify/validate the record first (see "
                        "repro.fleet.ingest), or a malformed read "
                        "poisons the trusted state here")
