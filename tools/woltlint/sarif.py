"""SARIF 2.1.0 output for GitHub code scanning.

One ``run`` per invocation, carrying the full rule catalogue in the
tool driver (GitHub renders rule metadata in the code-scanning UI) and
one ``result`` per reported finding.  Paths are emitted exactly as
woltlint displays them — ``/``-separated and relative to the analysis
root — which is what the upload action expects for annotation
placement.

Only the stable core of the spec is produced: ``tool.driver`` with
``rules``, and ``results`` with ``ruleId``/``ruleIndex``/``level``/
``message``/``locations``.  Parse failures (``E001``) map to level
``error``; rule findings map to ``warning``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .findings import Finding
from .rules import RULES

__all__ = ["to_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: The synthetic parse-error rule is not in RULES but must be
#: declarable in the driver when a result references it.
_PARSE_ERROR_CODE = "E001"

def _rule_entries() -> List[dict]:
    entries: List[dict] = []
    for code in sorted(RULES):
        rule = RULES[code]
        entries.append({
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "warning"},
        })
    entries.append({
        "id": _PARSE_ERROR_CODE,
        "name": "parse-error",
        "shortDescription": {"text": "file does not parse"},
        "fullDescription": {
            "text": "The Python parser rejected the file; no rules "
                    "were run on it."},
        "defaultConfiguration": {"level": "error"},
    })
    return entries


def to_sarif(findings: Sequence[Finding], tool_version: str) -> dict:
    """Render findings as a SARIF 2.1.0 log dictionary."""
    rules = _rule_entries()
    index_of: Dict[str, int] = {entry["id"]: i
                                for i, entry in enumerate(rules)}
    results: List[dict] = []
    for finding in findings:
        level = "error" if finding.rule == _PARSE_ERROR_CODE \
            else "warning"
        result = {
            "ruleId": finding.rule,
            "level": level,
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in index_of:
            result["ruleIndex"] = index_of[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "woltlint",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
